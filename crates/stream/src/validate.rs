//! Validation harness: streaming estimator vs the exact batch integrator.
//!
//! Every run here drives **the same deterministic stream** through three
//! paths and compares them:
//!
//! 1. [`exact_energy`] — the ground truth: per-source
//!    [`EnergyIntegrator`]s fed the uncorrupted signal directly;
//! 2. [`run_synchronous`] — the workspace's batch idiom: per-source
//!    [`FaultTolerantIntegrator`]s polled through a [`FaultInjector`],
//!    no queues, no reordering, no retries;
//! 3. [`run_stream`] — the full [`StreamPipeline`].
//!
//! On a fault-free in-order stream, paths 2 and 3 must agree **byte for
//! byte** (the streaming layer is then a pure re-plumbing of the same
//! floating-point operations); under chaos, path 3 must stay *conserved*
//! (every sample tallied) with an energy error that shrinks as queue
//! capacity and lateness bounds grow. The sweep functions score exactly
//! that and feed the `stream` figure family in `sustain-bench`.

use serde::{Deserialize, Serialize};

use sustain_core::quality::DataQualityReport;
use sustain_core::units::{Energy, Power, TimeSpan};
use sustain_telemetry::faults::{FaultInjector, FaultPlan, ImputationPolicy};
use sustain_telemetry::hierarchy::TraceTree;
use sustain_telemetry::meter::{EnergyIntegrator, FaultTolerantIntegrator};
use sustain_telemetry::trace::PowerTrace;

use crate::constants;
use crate::pipeline::{StreamConfig, StreamPipeline, StreamReport};

/// The synthetic fleet signal: a per-source phase-shifted triangle wave
/// around [`constants::VALIDATION_BASE_WATTS`], modelling the diurnal
/// utilization swing of a loaded server. Piecewise linear, so the exact
/// trapezoidal integral has no discretization error to confound the
/// streaming-vs-batch comparison.
pub fn synthetic_power(source: usize, at: TimeSpan) -> Power {
    let phase = (source % constants::VALIDATION_HOSTS_PER_RACK) as f64
        / constants::VALIDATION_HOSTS_PER_RACK as f64;
    let turns = at.as_secs() / constants::VALIDATION_PERIOD_SECS + phase;
    let frac = turns - turns.floor();
    let tri = if frac < 0.5 {
        2.0 * frac
    } else {
        2.0 - 2.0 * frac
    };
    Power::from_watts(
        constants::VALIDATION_BASE_WATTS + constants::VALIDATION_SWING_WATTS * (2.0 * tri - 1.0),
    )
}

/// The label of validation source `i`: `rack<r>/host<h>`, grouping
/// [`constants::VALIDATION_HOSTS_PER_RACK`] hosts per rack so the final
/// [`TraceTree`] exercises two aggregation levels.
pub fn source_label(i: usize) -> String {
    format!(
        "rack{}/host{}",
        i / constants::VALIDATION_HOSTS_PER_RACK,
        i % constants::VALIDATION_HOSTS_PER_RACK
    )
}

/// Ground-truth energy: per-source exact [`EnergyIntegrator`]s over the
/// uncorrupted synthetic signal, summed in source order.
pub fn exact_energy(sources: usize, ticks: u64, interval: TimeSpan) -> Energy {
    let mut total = Energy::ZERO;
    for source in 0..sources {
        let mut integrator = EnergyIntegrator::new();
        for i in 0..ticks {
            let at = interval * i as f64;
            integrator.push(at, synthetic_power(source, at));
        }
        total += integrator.energy();
    }
    total
}

/// Outcome of the synchronous (batch-idiom) reference path.
#[derive(Debug, Clone)]
pub struct SyncOutcome {
    /// Accounted energy (measured + imputed), summed in source order.
    pub energy: Energy,
    /// Merged quality accounting across all sources.
    pub quality: DataQualityReport,
    /// Hierarchical roll-up of the observed traces.
    pub tree: TraceTree,
}

/// The batch reference: each source polled straight through its injector
/// into a [`FaultTolerantIntegrator`] — no queues, no reorder stage, no
/// retries. This is exactly what the rest of the workspace does today, so
/// it is the semantic baseline the streaming path must match when no
/// stage has anything to do.
pub fn run_synchronous(
    plan: &FaultPlan,
    sources: usize,
    ticks: u64,
    interval: TimeSpan,
    imputation: ImputationPolicy,
) -> SyncOutcome {
    let mut quality = DataQualityReport::default();
    let mut energy = Energy::ZERO;
    let mut tree = TraceTree::new();
    for source in 0..sources {
        let label = source_label(source);
        let mut injector = FaultInjector::new(plan, &label);
        let mut integrator = FaultTolerantIntegrator::new(interval, imputation);
        let mut trace = PowerTrace::new();
        for i in 0..ticks {
            let at = interval * i as f64;
            match injector.corrupt(at, interval, synthetic_power(source, at)) {
                Some((t, p)) => {
                    if integrator.push(t, Some(p)) {
                        trace.push(t, p);
                    }
                }
                None => {
                    integrator.push(at, None);
                }
            }
        }
        integrator.merge_faults(&injector.counts());
        quality.merge(&integrator.report());
        energy += integrator.energy();
        tree.insert(label, trace);
    }
    SyncOutcome {
        energy,
        quality,
        tree,
    }
}

/// Runs the full streaming pipeline over the same synthetic fleet.
pub fn run_stream(
    plan: &FaultPlan,
    config: StreamConfig,
    sources: usize,
    ticks: u64,
) -> StreamReport {
    let mut pipe = StreamPipeline::new(config);
    for i in 0..sources {
        pipe.add_source(&source_label(i), plan);
    }
    pipe.run(ticks, synthetic_power);
    pipe.finish()
}

/// [`FaultPlan::degraded`] with every probabilistic rate multiplied by
/// `scale` (saturating at 1), the chaos axis of the validation sweeps.
///
/// # Panics
///
/// Panics if `scale` is negative.
pub fn scaled_plan(scale: f64) -> FaultPlan {
    assert!(scale >= 0.0, "fault scale must be non-negative");
    let base = FaultPlan::degraded();
    base.with_dropout((base.dropout.value() * scale).min(1.0))
        .with_timeout((base.timeout.value() * scale).min(1.0))
        .with_stuck((base.stuck.value() * scale).min(1.0), base.stuck_len)
        .with_noise_burst(
            (base.noise_burst.value() * scale).min(1.0),
            base.noise_burst_std,
        )
}

/// One scored point of a validation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationPoint {
    /// The swept knob's value (fault scale, lateness bound, capacity…).
    pub knob: f64,
    /// |streaming − exact| / exact.
    pub error: f64,
    /// Fraction of expected samples actually observed.
    pub coverage: f64,
    /// Samples evicted by full queues.
    pub queue_drops: u64,
    /// Samples refused as too late.
    pub late: u64,
    /// Meter-read retries issued.
    pub retries: u64,
    /// Ticks lost at the meter.
    pub lost_reads: u64,
}

fn score(knob: f64, report: &StreamReport, exact: Energy) -> ValidationPoint {
    ValidationPoint {
        knob,
        error: report.relative_error(exact),
        coverage: report.quality.coverage().value(),
        queue_drops: report.quality.faults.queue_drops,
        late: report.quality.faults.late_arrivals,
        retries: report.retries,
        lost_reads: report.lost_reads,
    }
}

/// Sweeps the chaos scale: how does estimate error degrade as every fault
/// rate is multiplied up, at a fixed pipeline configuration?
pub fn fault_rate_sweep(
    scales: &[f64],
    config: StreamConfig,
    sources: usize,
    ticks: u64,
) -> Vec<ValidationPoint> {
    let exact = exact_energy(sources, ticks, config.interval);
    scales
        .iter()
        .map(|&scale| {
            let plan = scaled_plan(scale).with_seed(constants::VALIDATION_SEED);
            score(scale, &run_stream(&plan, config, sources, ticks), exact)
        })
        .collect()
}

/// Sweeps the lateness bound (in seconds) under a fixed degraded plan:
/// tighter bounds trade buffered memory for late-arrival loss.
pub fn lateness_sweep(
    bounds_secs: &[f64],
    config: StreamConfig,
    sources: usize,
    ticks: u64,
) -> Vec<ValidationPoint> {
    let exact = exact_energy(sources, ticks, config.interval);
    let plan = FaultPlan::degraded().with_seed(constants::VALIDATION_SEED);
    bounds_secs
        .iter()
        .map(|&bound| {
            let cfg = config.with_lateness(Some(TimeSpan::from_secs(bound)));
            score(bound, &run_stream(&plan, cfg, sources, ticks), exact)
        })
        .collect()
}

/// Sweeps the per-shard queue capacity under `DropOldest` backpressure
/// with infrequent flushes: smaller queues evict more, and every eviction
/// must show up as a tallied drop, never as silent error.
pub fn capacity_sweep(
    capacities: &[usize],
    config: StreamConfig,
    sources: usize,
    ticks: u64,
) -> Vec<ValidationPoint> {
    let exact = exact_energy(sources, ticks, config.interval);
    let plan = FaultPlan::degraded().with_seed(constants::VALIDATION_SEED);
    capacities
        .iter()
        .map(|&capacity| {
            let cfg = config
                .with_queue_capacity(capacity)
                .with_backpressure(crate::queue::BackpressurePolicy::DropOldest);
            score(
                capacity as f64,
                &run_stream(&plan, cfg, sources, ticks),
                exact,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> StreamConfig {
        StreamConfig {
            shards: 2,
            queue_capacity: 128,
            reorder_capacity: 64,
            flush_every: 32,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn clean_stream_matches_synchronous_exactly() {
        let plan = FaultPlan::none();
        let config = test_config();
        let sync = run_synchronous(&plan, 6, 500, config.interval, config.imputation);
        let stream = run_stream(&plan, config, 6, 500);
        assert_eq!(sync.quality, stream.quality);
        assert_eq!(sync.energy, stream.energy);
        assert_eq!(sync.tree, stream.tree);
        assert!(stream.quality.is_pristine());
    }

    #[test]
    fn clean_stream_matches_ground_truth() {
        let config = test_config();
        let exact = exact_energy(4, 400, config.interval);
        let stream = run_stream(&FaultPlan::none(), config, 4, 400);
        assert!(stream.relative_error(exact) < 1e-12, "{stream:?}");
    }

    #[test]
    fn fault_sweep_error_grows_but_stays_bounded() {
        let points = fault_rate_sweep(&[0.0, 1.0, 4.0], test_config(), 4, 600);
        // Scale 0 keeps the (bounded) clock skew, so the estimate is close
        // but not bit-exact; the reorder stage absorbs the skew.
        assert!(
            points[0].error < 1e-4,
            "skew-only is near-exact: {points:?}"
        );
        assert!(
            points[0].error < points[2].error,
            "error grows with chaos: {points:?}"
        );
        assert!(
            points[0].coverage > points[2].coverage,
            "more chaos, less coverage: {points:?}"
        );
        for p in &points {
            assert!(p.error < 0.2, "imputation keeps error bounded: {p:?}");
        }
    }

    #[test]
    fn tiny_capacity_drops_and_accounts() {
        let config = StreamConfig {
            flush_every: 200,
            ..test_config()
        };
        let points = capacity_sweep(&[2, 1024], config, 4, 400);
        assert!(points[0].queue_drops > 0, "{points:?}");
        assert_eq!(points[1].queue_drops, 0, "{points:?}");
        assert!(points[0].coverage < points[1].coverage);
    }

    #[test]
    fn scaled_plan_zero_is_noise_free() {
        let plan = scaled_plan(0.0);
        assert_eq!(plan.dropout.value(), 0.0);
        assert_eq!(plan.timeout.value(), 0.0);
        // Clock skew is a bound, not a rate: the sweep keeps it.
        assert!(plan.clock_skew.value() > 0.0);
    }
}
