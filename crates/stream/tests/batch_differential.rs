//! Differential suite for the batched flush path: the report a pipeline
//! produces must be a pure function of the sample stream — independent of
//! how the release sequence is cut into batches (flush cadence), how the
//! sources are sharded, and how many pool threads drain the shards.
//!
//! Flush cadence is the pipeline-level "arbitrary batch boundaries" knob:
//! `flush_every = 1` feeds the kernel single-sample batches (the
//! per-sample path in all but name), while larger, deliberately unaligned
//! cadences hand it wide multi-tick batches. With capacities generous
//! enough that no forced release or backpressure eviction fires, the
//! released per-sink sample sequences are identical at every cadence, so
//! every report must be byte-identical too.

use sustain_par::ParPool;
use sustain_stream::pipeline::{StreamConfig, StreamPipeline, StreamReport};
use sustain_stream::validate::{self, synthetic_power};
use sustain_telemetry::faults::FaultPlan;

const SOURCES: usize = 12;
const TICKS: u64 = 256;

fn run(plan: &FaultPlan, shards: usize, flush_every: u64) -> StreamReport {
    // Queue capacity covers the longest cadence (12 sources x 256 ticks)
    // and the reorder buffer never reaches its forced-release limit, so
    // the differential's precondition — an identical release sequence at
    // every cadence — holds by construction.
    let mut pipe = StreamPipeline::new(StreamConfig {
        shards,
        queue_capacity: 4096,
        reorder_capacity: 4096,
        flush_every,
        ..StreamConfig::default()
    });
    for i in 0..SOURCES {
        pipe.add_source(&validate::source_label(i), plan);
    }
    pipe.run(TICKS, synthetic_power);
    pipe.finish()
}

fn assert_identical(a: &StreamReport, b: &StreamReport, what: &str) {
    assert_eq!(a.quality, b.quality, "{what}: quality diverged");
    assert_eq!(a.energy, b.energy, "{what}: energy diverged");
    assert_eq!(
        a.energy.as_joules().to_bits(),
        b.energy.as_joules().to_bits(),
        "{what}: energy bits diverged"
    );
    assert_eq!(a.tree, b.tree, "{what}: trace tree diverged");
    assert_eq!(a.rollup, b.rollup, "{what}: rollup diverged");
    assert_eq!(a.lost_reads, b.lost_reads, "{what}: lost reads diverged");
    assert_eq!(a.retries, b.retries, "{what}: retries diverged");
}

/// `ParPool::set_threads` is process-global, so the whole grid lives in
/// one test (parallel tests in this binary would race on the override).
#[test]
fn batch_boundaries_threads_and_shards_never_change_reports() {
    for (label, plan) in [
        ("clean", FaultPlan::none()),
        ("degraded", FaultPlan::degraded().with_seed(97)),
    ] {
        // Reference: single-sample batches (per-sample path in all but
        // name), serial, 4 shards.
        ParPool::set_threads(1);
        let reference = run(&plan, 4, 1);
        assert!(
            reference.is_conserved(),
            "{label}: reference must conserve samples"
        );
        assert_eq!(
            reference.quality.faults.queue_drops, 0,
            "{label}: differential precondition — no eviction may fire"
        );

        // Unaligned (7), default-ish (32), and one-big-batch (256)
        // cadences, at 1 and 4 threads, at 1 and 4 shards.
        for flush_every in [7u64, 32, 256] {
            for threads in [1usize, 4] {
                for shards in [1usize, 4] {
                    ParPool::set_threads(threads);
                    let report = run(&plan, shards, flush_every);
                    assert_identical(
                        &reference,
                        &report,
                        &format!(
                            "{label}: flush_every={flush_every} \
                             threads={threads} shards={shards}"
                        ),
                    );
                }
            }
        }
    }
    ParPool::set_threads(0);
}

/// The named `telemetry.integrate.batch` span must account for the bulk
/// of `stream.flush`: if per-sample integration work leaks out of the
/// batched stage (or the control path grows un-amortized per-flush work),
/// this attribution collapses and the batched-kernel claim is void.
///
/// Wall-clock measurement: best-of-3 so one scheduler blip on a loaded
/// box cannot fail the build — any single clean run proves the shape.
#[test]
fn flush_time_attributes_to_the_batched_kernel() {
    let mut best = 0.0f64;
    for _ in 0..3 {
        let obs = sustain_obs::ObsConfig::enabled().with_wall_clock().build();
        let plan = FaultPlan::none();
        sustain_obs::with_task_handle(&obs, || {
            let mut pipe = StreamPipeline::new(StreamConfig {
                shards: 1,
                queue_capacity: 65536,
                reorder_capacity: 65536,
                flush_every: 2048,
                ..StreamConfig::default()
            })
            .with_obs(&obs);
            for i in 0..32 {
                pipe.add_source(&validate::source_label(i), &plan);
            }
            pipe.run(8192, synthetic_power);
            assert!(pipe.finish().is_conserved());
        });
        let profile = sustain_prof::profile_records(&obs.events());
        best = best.max(profile.attribution("stream.flush", "telemetry.integrate.batch"));
        if best >= 0.8 {
            break;
        }
    }
    assert!(
        best >= 0.8,
        "batched integration stage must dominate stream.flush: \
         best attribution over 3 runs was {best:.3}"
    );
}
