//! Thread-count and topology differentials for the streaming pipeline.
//!
//! The workspace's determinism contract extends to the streaming layer:
//! the *only* thing `ParPool::set_threads` may change is wall-clock time.
//! Every report, energy total, and trace tree must be byte-identical at 1
//! and 4 threads, for any sharding, and — with a zero-rate [`FaultPlan`]
//! and an infinite lateness bound — identical to plain synchronous
//! polling with no streaming machinery at all.

use sustain_core::units::TimeSpan;
use sustain_par::ParPool;
use sustain_stream::pipeline::{StreamConfig, StreamPipeline, StreamReport};
use sustain_stream::validate::{self, synthetic_power};
use sustain_telemetry::faults::FaultPlan;

const SOURCES: usize = 10;
const TICKS: u64 = 400;

fn run(plan: &FaultPlan, config: StreamConfig) -> StreamReport {
    let mut pipe = StreamPipeline::new(config);
    for i in 0..SOURCES {
        pipe.add_source(&validate::source_label(i), plan);
    }
    pipe.run(TICKS, synthetic_power);
    pipe.finish()
}

fn assert_identical(a: &StreamReport, b: &StreamReport, what: &str) {
    assert_eq!(a.quality, b.quality, "{what}: quality diverged");
    assert_eq!(a.energy, b.energy, "{what}: energy diverged");
    assert_eq!(a.tree, b.tree, "{what}: trace tree diverged");
    assert_eq!(a.lost_reads, b.lost_reads, "{what}: lost reads diverged");
    assert_eq!(a.retries, b.retries, "{what}: retries diverged");
}

/// `ParPool::set_threads` is process-global, so every thread-count
/// differential lives in this one test: parallel test binaries would
/// otherwise race on the override.
#[test]
fn thread_count_and_sharding_never_change_any_report() {
    let degraded = FaultPlan::degraded().with_seed(41);
    let config = StreamConfig {
        shards: 4,
        queue_capacity: 64,
        reorder_capacity: 32,
        flush_every: 16,
        ..StreamConfig::default()
    };

    // (a) Zero-rate plan + infinite lateness: the pipeline must be a
    // byte-identical no-op against synchronous polling — same quality,
    // energy, and tree — at 1 and at 4 threads. No RNG draw, no retry,
    // no drop may fire anywhere on this path.
    let clean = FaultPlan::none();
    let unbounded = config.with_lateness(None);
    let sync = validate::run_synchronous(
        &clean,
        SOURCES,
        TICKS,
        unbounded.interval,
        unbounded.imputation,
    );
    for threads in [1usize, 4] {
        ParPool::set_threads(threads);
        let report = run(&clean, unbounded);
        assert_eq!(
            sync.quality, report.quality,
            "no-op differential at {threads} threads"
        );
        assert_eq!(sync.energy, report.energy);
        assert_eq!(sync.tree, report.tree);
        assert!(report.quality.is_pristine());
        assert_eq!(report.retries + report.lost_reads, 0);
        assert_eq!(
            report.quality.faults.queue_drops
                + report.quality.faults.late_arrivals
                + report.quality.faults.out_of_order,
            0,
            "no streaming fault may fire on the clean path"
        );
    }

    // (b) Chaos differential: a degraded plan produces the identical
    // report at 1 and 4 threads...
    ParPool::set_threads(1);
    let serial = run(&degraded, config);
    ParPool::set_threads(4);
    let parallel = run(&degraded, config);
    ParPool::set_threads(0);
    assert_identical(&serial, &parallel, "degraded 1-vs-4 threads");
    assert!(
        serial.is_conserved(),
        "chaos must stay conserved: {serial:?}"
    );
    assert!(!serial.quality.is_pristine(), "chaos must leave a mark");

    // (c) ...and sharding is an implementation detail: 1 shard and 4
    // shards agree bit-for-bit because results merge in source order.
    let one_shard = run(
        &degraded,
        StreamConfig {
            shards: 1,
            ..config
        },
    );
    assert_identical(&serial, &one_shard, "4-vs-1 shards");

    // (d) Same stream, same seed, run twice: reports are reproducible.
    let again = run(&degraded, config);
    assert_identical(&serial, &again, "repeat run");
}

/// The chaos feed degrades the estimate but never the accounting: across
/// a spread of fault scales every report conserves its samples, and the
/// error against exact integration stays bounded by imputation.
#[test]
fn chaos_degradation_is_bounded_and_fully_accounted() {
    let config = StreamConfig {
        shards: 2,
        queue_capacity: 64,
        reorder_capacity: 32,
        flush_every: 16,
        ..StreamConfig::default()
    };
    let exact = validate::exact_energy(SOURCES, TICKS, config.interval);
    for scale in [0.5, 2.0, 8.0] {
        let plan = validate::scaled_plan(scale).with_seed(97);
        let report = run(&plan, config);
        assert!(report.is_conserved(), "scale {scale}: {report:?}");
        assert!(
            report.relative_error(exact) < 0.5,
            "scale {scale}: error {} out of bounds",
            report.relative_error(exact)
        );
        let faults = &report.quality.faults;
        assert_eq!(
            report.quality.expected_samples,
            report.quality.observed_samples
                + report.lost_reads
                + faults.queue_drops
                + faults.late_arrivals
                + faults.out_of_order,
            "every missing sample must be attributed: {report:?}"
        );
    }
}

/// A tight lateness bound under heavy skew trades coverage for memory —
/// but the trade is explicit: tighter bounds mean more tallied late
/// arrivals, never silent loss, and the relationship is monotone.
#[test]
fn lateness_bound_trades_tallied_losses_not_silent_ones() {
    let plan = FaultPlan::none().with_seed(7).with_clock_skew(1.0);
    let strand = |bound_s: f64| {
        let config = StreamConfig {
            shards: 2,
            queue_capacity: 64,
            reorder_capacity: 64,
            lateness: Some(TimeSpan::from_secs(bound_s)),
            flush_every: 4,
            ..StreamConfig::default()
        };
        let report = run(&plan, config);
        assert!(report.is_conserved(), "bound {bound_s}: {report:?}");
        report.quality.faults.late_arrivals + report.quality.faults.out_of_order
    };
    let tight = strand(0.01);
    let loose = strand(0.5);
    let safe = strand(2.0);
    assert!(
        tight > loose,
        "tighter bound strands more: {tight} vs {loose}"
    );
    assert_eq!(safe, 0, "a bound beyond the max skew strands nobody");
}
