//! Property tests for the streaming ingestion pipeline: whatever shard
//! count, queue capacity, or chaos mixture the stream runs through, the
//! estimate must stay exact when nothing is lost and *conserved* (every
//! sample tallied somewhere) when things are.

use proptest::prelude::*;

use sustain_core::units::TimeSpan;
use sustain_stream::pipeline::StreamConfig;
use sustain_stream::queue::BackpressurePolicy;
use sustain_stream::validate;
use sustain_telemetry::faults::FaultPlan;

proptest! {
    /// The headline exactness claim: on an in-order, fault-free stream the
    /// streaming estimator equals the exact [`EnergyIntegrator`] **to the
    /// bit**, for any shard count, queue capacity, reorder capacity, and
    /// flush cadence. The pipeline is then pure re-plumbing of the same
    /// floating-point operations in the same order.
    ///
    /// [`EnergyIntegrator`]: sustain_telemetry::meter::EnergyIntegrator
    #[test]
    fn clean_stream_is_bit_exact_for_any_topology(
        shards in 1usize..6,
        queue_capacity in 1usize..96,
        reorder_capacity in 1usize..64,
        flush_every in 1u64..80,
        sources in 1usize..7,
        ticks in 2u64..150,
    ) {
        let config = StreamConfig {
            shards,
            queue_capacity,
            reorder_capacity,
            flush_every,
            ..StreamConfig::default()
        };
        let report = validate::run_stream(&FaultPlan::none(), config, sources, ticks);
        let exact = validate::exact_energy(sources, ticks, config.interval);
        prop_assert_eq!(report.energy, exact, "streaming must be bit-exact");
        prop_assert!(report.is_conserved());
        prop_assert!(report.quality.is_pristine());
        prop_assert_eq!(report.quality.observed_samples, ticks * sources as u64);
        // Blocked offers and forced releases may fire with tiny capacities,
        // but they are lossless mechanisms — nothing above may be affected.
        prop_assert_eq!(report.retries, 0);
    }

    /// Chaos differential: under an arbitrary fault mixture the report
    /// stays conserved — expected samples equal ticks × sources, and the
    /// gap between expected and observed is exactly the sum of the tallied
    /// loss classes. Nothing is ever silently dropped.
    #[test]
    fn chaotic_stream_is_always_conserved(
        seed in any::<u64>(),
        dropout in 0.0f64..0.5,
        timeout in 0.0f64..0.5,
        skew in 0.0f64..1.0,
        lateness_s in 0.01f64..4.0,
        shards in 1usize..5,
        queue_capacity in 1usize..48,
        drop_oldest in any::<bool>(),
    ) {
        let plan = FaultPlan::none()
            .with_seed(seed)
            .with_dropout(dropout)
            .with_timeout(timeout)
            .with_clock_skew(skew);
        let config = StreamConfig {
            shards,
            queue_capacity,
            reorder_capacity: 16,
            backpressure: if drop_oldest {
                BackpressurePolicy::DropOldest
            } else {
                BackpressurePolicy::BlockProducer
            },
            lateness: Some(TimeSpan::from_secs(lateness_s)),
            flush_every: 24,
            ..StreamConfig::default()
        };
        let report = validate::run_stream(&plan, config, 5, 160);
        prop_assert!(report.is_conserved(), "not conserved: {report:?}");
        let exact = validate::exact_energy(5, 160, config.interval);
        // Imputation bridges what chaos destroys: even at 50% dropout the
        // estimate stays within a factor-level bound of the truth rather
        // than collapsing toward zero.
        prop_assert!(
            report.relative_error(exact) < 0.75,
            "error unbounded: {} (report {report:?})",
            report.relative_error(exact)
        );
    }

    /// The reorder stage really does its job: with clock skew inside the
    /// lateness bound and no other faults, every sample is still observed
    /// (re-sequenced, not rejected), whatever the sharding.
    #[test]
    fn skew_within_the_bound_never_loses_a_sample(
        seed in any::<u64>(),
        skew in 0.0f64..1.0,
        shards in 1usize..5,
    ) {
        let plan = FaultPlan::none().with_seed(seed).with_clock_skew(skew);
        let config = StreamConfig {
            shards,
            queue_capacity: 64,
            reorder_capacity: 64,
            // The injector's skew is bounded by one interval; a 2 s bound
            // at a 1 s interval therefore admits every straggler.
            lateness: Some(TimeSpan::from_secs(2.0)),
            flush_every: 16,
            ..StreamConfig::default()
        };
        let report = validate::run_stream(&plan, config, 4, 120);
        prop_assert!(report.is_conserved());
        // Skew may widen a gap past the imputation threshold (that is the
        // integrator's business), but no sample may be *lost*: everything
        // re-sequences inside the bound.
        prop_assert_eq!(
            report.quality.observed_samples,
            report.quality.expected_samples,
            "bounded skew must not lose samples: {:?}",
            &report
        );
        prop_assert_eq!(report.quality.faults.late_arrivals, 0);
        prop_assert_eq!(report.quality.faults.out_of_order, 0);
    }
}
