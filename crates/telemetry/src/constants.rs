//! Named physical constants for the simulated power/energy counters.
//!
//! Provenanced numbers only — the `cargo xtask lint` rule `magic-constant`
//! bans bare literals in carbon-unit constructors elsewhere in the crate.

/// Idle power of a dual-socket server's DRAM subsystem, in watts (RAPL DRAM
/// domain; order-of-magnitude from published SPECpower-style breakdowns).
pub const DRAM_IDLE_WATTS: f64 = 16.0;

/// Fully-loaded DRAM subsystem power, in watts.
pub const DRAM_PEAK_WATTS: f64 = 60.0;

/// Idle uncore (caches, memory controllers, interconnect) power, in watts.
pub const UNCORE_IDLE_WATTS: f64 = 10.0;

/// Fully-loaded uncore power, in watts.
pub const UNCORE_PEAK_WATTS: f64 = 40.0;
