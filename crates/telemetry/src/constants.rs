//! Named physical constants for the simulated power/energy counters.
//!
//! Provenanced numbers only — the `cargo xtask lint` rule `magic-constant`
//! bans bare literals in carbon-unit constructors elsewhere in the crate.

/// Idle power of a dual-socket server's DRAM subsystem, in watts (RAPL DRAM
/// domain; order-of-magnitude from published SPECpower-style breakdowns).
pub const DRAM_IDLE_WATTS: f64 = 16.0;

/// Fully-loaded DRAM subsystem power, in watts.
pub const DRAM_PEAK_WATTS: f64 = 60.0;

/// Idle uncore (caches, memory controllers, interconnect) power, in watts.
pub const UNCORE_IDLE_WATTS: f64 = 10.0;

/// Fully-loaded uncore power, in watts.
pub const UNCORE_PEAK_WATTS: f64 = 40.0;

// ---------------------------------------------------------------------------
// Fault-model defaults (crate::faults)
// ---------------------------------------------------------------------------

/// Wrap period of a RAPL energy-status register, in microjoules: the register
/// is 32 bits wide (Intel SDM vol. 3B, MSR_PKG_ENERGY_STATUS), so with the
/// 1 µJ energy unit this simulation uses it rolls over every 2³² µJ ≈ 4295 J
/// — under 15 s at a loaded dual-socket package, which is why production RAPL
/// readers must be wraparound-aware.
pub const RAPL_WRAP_UJ: u64 = 1 << 32;

/// Default per-sample dropout probability for a degraded meter: CodeCarbon
/// ground-truthing (Fischer et al., 2025) and Eco2AI's fault-tolerance notes
/// put routine collector sample loss at the percent level.
pub const DEFAULT_DROPOUT_RATE: f64 = 0.01;

/// Default per-query NVML read-timeout probability: driver-level power reads
/// time out well under once per thousand queries on healthy hosts.
pub const DEFAULT_TIMEOUT_RATE: f64 = 0.002;

/// Default probability that a counter freezes on a read, entering a stuck
/// episode (stale sysfs/driver caches; rare but observed in fleet telemetry).
pub const DEFAULT_STUCK_RATE: f64 = 0.001;

/// Default length of a stuck-counter episode, in samples — the order of a
/// driver cache-refresh period at 1 Hz sampling.
pub const DEFAULT_STUCK_LEN: u32 = 5;

/// Default per-sample probability of a Gaussian noise burst (EMI / PSU
/// transients on top of the sensor's steady ±5 W class noise).
pub const DEFAULT_NOISE_BURST_RATE: f64 = 0.005;

/// Standard deviation of a noise burst, in watts — an order of magnitude
/// above the ±5 W steady sensor class, matching transient glitches.
pub const NOISE_BURST_STD_WATTS: f64 = 50.0;

/// Default maximum timestamp jitter as a fraction of the sampling interval
/// (NTP-disciplined hosts drift well inside a quarter interval at 1 Hz).
pub const DEFAULT_CLOCK_SKEW: f64 = 0.25;

/// A gap longer than this multiple of the nominal sampling interval is
/// treated as missing data and bridged by imputation rather than integrated
/// as a measured trapezoid (the convention CodeCarbon-style pollers use to
/// separate jitter from loss).
pub const GAP_DETECTION_FACTOR: f64 = 1.5;

/// TPU v3 peak (TDP-like) board power in watts, per the paper's device
/// comparison (Table: accelerator characteristics; matches Google's
/// published per-chip figure).
pub const TPU_V3_PEAK_WATTS: f64 = 283.0;
