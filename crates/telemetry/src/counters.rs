//! Simulated hardware energy counters.
//!
//! Production carbon telemetry reads cumulative energy counters: Intel RAPL
//! (per-package/DRAM microjoule counters) on CPUs and NVML power queries on
//! GPUs. This module simulates both over [`PowerModel`]s, with optional
//! Gaussian measurement noise, so tracker code exercises the same
//! read-a-monotonic-counter discipline it would against real hardware.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

use sustain_core::stats::{Normal, Sampler};
use sustain_core::units::{Energy, Fraction, Power, TimeSpan};

use crate::device::{DeviceSpec, LinearPowerModel, PowerModel};

/// A RAPL-style energy domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RaplDomain {
    /// Whole CPU package.
    Package,
    /// DRAM attached to the package.
    Dram,
    /// Integrated uncore (LLC, memory controller).
    Uncore,
}

impl fmt::Display for RaplDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaplDomain::Package => f.write_str("package"),
            RaplDomain::Dram => f.write_str("dram"),
            RaplDomain::Uncore => f.write_str("uncore"),
        }
    }
}

/// A simulated RAPL counter: a monotonically increasing microjoule counter
/// per domain, advanced by telling the simulator how the package was utilized.
///
/// ```rust
/// use sustain_telemetry::counters::{RaplDomain, SimulatedRapl};
/// use sustain_core::units::{Fraction, TimeSpan};
///
/// let mut rapl = SimulatedRapl::new();
/// let before = rapl.read(RaplDomain::Package);
/// rapl.advance(TimeSpan::from_secs(10.0), Fraction::new(0.8).unwrap());
/// let after = rapl.read(RaplDomain::Package);
/// assert!(after > before);
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedRapl {
    package_model: LinearPowerModel,
    dram_model: LinearPowerModel,
    uncore_model: LinearPowerModel,
    package_uj: u64,
    dram_uj: u64,
    uncore_uj: u64,
    wrap_uj: Option<u64>,
}

impl Default for SimulatedRapl {
    fn default() -> SimulatedRapl {
        SimulatedRapl::new()
    }
}

impl SimulatedRapl {
    /// Creates a counter over a dual-socket CPU server's power envelope.
    pub fn new() -> SimulatedRapl {
        let cpu = DeviceSpec::CpuServer;
        SimulatedRapl {
            package_model: LinearPowerModel::new(cpu.idle() * 0.6, cpu.peak() * 0.7),
            dram_model: LinearPowerModel::new(
                Power::from_watts(crate::constants::DRAM_IDLE_WATTS),
                Power::from_watts(crate::constants::DRAM_PEAK_WATTS),
            ),
            uncore_model: LinearPowerModel::new(
                Power::from_watts(crate::constants::UNCORE_IDLE_WATTS),
                Power::from_watts(crate::constants::UNCORE_PEAK_WATTS),
            ),
            package_uj: 0,
            dram_uj: 0,
            uncore_uj: 0,
            wrap_uj: None,
        }
    }

    /// Makes `read` behave like a real fixed-width register, rolling over
    /// every `period_uj` microjoules (use
    /// [`crate::constants::RAPL_WRAP_UJ`] for the 32-bit RAPL register).
    /// Deltas across reads must then go through [`SimulatedRapl::delta_wrapping`].
    ///
    /// # Panics
    ///
    /// Panics if `period_uj` is zero.
    pub fn with_wrap(mut self, period_uj: u64) -> SimulatedRapl {
        assert!(period_uj > 0, "wrap period must be positive");
        self.wrap_uj = Some(period_uj);
        self
    }

    /// The configured wrap period, if any.
    pub fn wrap_period(&self) -> Option<u64> {
        self.wrap_uj
    }

    /// Advances simulated time with the package at `utilization`.
    pub fn advance(&mut self, span: TimeSpan, utilization: Fraction) {
        let add = |model: &LinearPowerModel, counter: &mut u64| {
            let e = model.power(utilization) * span;
            *counter += (e.as_joules() * 1e6) as u64;
        };
        add(&self.package_model, &mut self.package_uj);
        add(&self.dram_model, &mut self.dram_uj);
        add(&self.uncore_model, &mut self.uncore_uj);
    }

    /// Reads the cumulative counter for a domain, in microjoules — the raw
    /// integer a real `/sys/class/powercap` read would return. With a wrap
    /// period configured the value rolls over like the real register.
    pub fn read(&self, domain: RaplDomain) -> u64 {
        let raw = match domain {
            RaplDomain::Package => self.package_uj,
            RaplDomain::Dram => self.dram_uj,
            RaplDomain::Uncore => self.uncore_uj,
        };
        match self.wrap_uj {
            Some(period) => raw % period,
            None => raw,
        }
    }

    /// Energy between two counter readings, assuming the counter never wraps
    /// (the legacy reading — a backwards counter saturates to zero energy).
    pub fn delta(before: u64, after: u64) -> Energy {
        crate::faults::wrapping_delta(before, after, None)
    }

    /// Wraparound-aware energy between two readings of a register with the
    /// given wrap period: a reading below its predecessor is interpreted as
    /// exactly one rollover, recovering the true delta as long as reads come
    /// at least once per wrap period.
    pub fn delta_wrapping(before: u64, after: u64, period_uj: u64) -> Energy {
        crate::faults::wrapping_delta(before, after, Some(period_uj))
    }

    /// Total energy across all domains since construction.
    pub fn total_energy(&self) -> Energy {
        Energy::from_joules((self.package_uj + self.dram_uj + self.uncore_uj) as f64 / 1e6)
    }
}

/// An NVML-style GPU counter: instantaneous power, utilization, and cumulative
/// energy, with optional Gaussian read noise matching real sensors' ±5 W class
/// accuracy.
#[derive(Debug, Clone)]
pub struct SimulatedNvml {
    model: LinearPowerModel,
    spec: DeviceSpec,
    utilization: Fraction,
    energy: Energy,
    noise_std: Power,
}

impl SimulatedNvml {
    /// Creates a counter for a GPU spec with no read noise.
    pub fn new(spec: DeviceSpec) -> SimulatedNvml {
        SimulatedNvml {
            model: spec.power_model(),
            spec,
            utilization: Fraction::ZERO,
            energy: Energy::ZERO,
            noise_std: Power::ZERO,
        }
    }

    /// Adds Gaussian read noise with the given standard deviation.
    pub fn with_noise(mut self, noise_std: Power) -> SimulatedNvml {
        self.noise_std = noise_std.max(Power::ZERO);
        self
    }

    /// The GPU spec being simulated.
    pub fn spec(&self) -> DeviceSpec {
        self.spec
    }

    /// Sets the current utilization (what the running kernel drives).
    pub fn set_utilization(&mut self, utilization: Fraction) {
        self.utilization = utilization;
    }

    /// The current utilization, as `nvmlDeviceGetUtilizationRates` would report.
    pub fn utilization(&self) -> Fraction {
        self.utilization
    }

    /// Advances simulated time at the current utilization.
    pub fn advance(&mut self, span: TimeSpan) {
        self.energy += self.model.power(self.utilization) * span;
    }

    /// Reads instantaneous power with sensor noise, as
    /// `nvmlDeviceGetPowerUsage` would report (never negative).
    pub fn read_power<R: Rng + ?Sized>(&self, rng: &mut R) -> Power {
        let true_power = self.model.power(self.utilization);
        if self.noise_std.is_zero() {
            return true_power;
        }
        let noise = Normal::new(0.0, self.noise_std.as_watts())
            // lint:allow(panic-discipline) with_noise clamps the std non-negative
            .expect("noise std validated in with_noise")
            .sample(rng);
        Power::from_watts((true_power.as_watts() + noise).max(0.0))
    }

    /// Cumulative true energy since construction (the ground truth a perfect
    /// `nvmlDeviceGetTotalEnergyConsumption` would return).
    pub fn energy(&self) -> Energy {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rapl_counters_are_monotone() {
        let mut rapl = SimulatedRapl::new();
        let mut prev = 0;
        for _ in 0..10 {
            rapl.advance(TimeSpan::from_secs(1.0), Fraction::new(0.5).unwrap());
            let now = rapl.read(RaplDomain::Package);
            assert!(now > prev);
            prev = now;
        }
    }

    #[test]
    fn rapl_delta_matches_power_model() {
        let mut rapl = SimulatedRapl::new();
        let before = rapl.read(RaplDomain::Dram);
        rapl.advance(TimeSpan::from_secs(100.0), Fraction::ZERO);
        let after = rapl.read(RaplDomain::Dram);
        // DRAM idles at 16 W → 1600 J.
        let e = SimulatedRapl::delta(before, after);
        assert!((e.as_joules() - 1600.0).abs() < 1.0);
    }

    #[test]
    fn rapl_delta_saturates_on_reset() {
        // A counter that appears to go backwards yields zero, not underflow.
        assert_eq!(SimulatedRapl::delta(100, 50), Energy::ZERO);
    }

    #[test]
    fn wrapped_register_rolls_over_and_delta_recovers() {
        let step = TimeSpan::from_secs(1.0);
        let util = Fraction::new(0.5).unwrap();
        // Ground-truth µJ per step from an unwrapped twin.
        let truth_uj = {
            let mut plain = SimulatedRapl::new();
            plain.advance(step, util);
            plain.read(RaplDomain::Package)
        };
        // A register 1.5 steps wide wraps exactly once across the second step.
        let period = truth_uj + truth_uj / 2;
        let mut rapl = SimulatedRapl::new().with_wrap(period);
        assert_eq!(rapl.wrap_period(), Some(period));
        rapl.advance(step, util);
        let before = rapl.read(RaplDomain::Package);
        rapl.advance(step, util);
        let after = rapl.read(RaplDomain::Package);
        assert!(after < before, "register must have rolled over");
        // Wrap-oblivious reading loses the step; wrap-aware recovers it.
        assert_eq!(SimulatedRapl::delta(before, after), Energy::ZERO);
        let recovered = SimulatedRapl::delta_wrapping(before, after, period);
        assert!((recovered.as_joules() - truth_uj as f64 / 1e6).abs() < 1e-6);
    }

    #[test]
    fn delta_wrapping_matches_plain_delta_without_rollover() {
        assert_eq!(
            SimulatedRapl::delta_wrapping(100, 400, 1 << 32),
            SimulatedRapl::delta(100, 400)
        );
    }

    #[test]
    fn rapl_total_includes_all_domains() {
        let mut rapl = SimulatedRapl::new();
        rapl.advance(TimeSpan::from_secs(10.0), Fraction::ONE);
        let sum = rapl.read(RaplDomain::Package)
            + rapl.read(RaplDomain::Dram)
            + rapl.read(RaplDomain::Uncore);
        assert!((rapl.total_energy().as_joules() - sum as f64 / 1e6).abs() < 1e-6);
    }

    #[test]
    fn nvml_energy_tracks_utilization() {
        let mut gpu = SimulatedNvml::new(DeviceSpec::V100);
        gpu.set_utilization(Fraction::ONE);
        gpu.advance(TimeSpan::from_hours(1.0));
        // 300 W for 1 h = 0.3 kWh.
        assert!((gpu.energy().as_kilowatt_hours() - 0.3).abs() < 1e-9);
        assert_eq!(gpu.utilization(), Fraction::ONE);
    }

    #[test]
    fn nvml_idle_draws_idle_power() {
        let mut gpu = SimulatedNvml::new(DeviceSpec::A100);
        gpu.advance(TimeSpan::from_hours(1.0));
        assert!((gpu.energy().as_watt_hours() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn nvml_noise_is_unbiased() {
        let mut gpu = SimulatedNvml::new(DeviceSpec::V100).with_noise(Power::from_watts(5.0));
        gpu.set_utilization(Fraction::new(0.5).unwrap());
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| gpu.read_power(&mut rng).as_watts())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 170.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn nvml_noiseless_read_is_exact() {
        let mut gpu = SimulatedNvml::new(DeviceSpec::P100);
        gpu.set_utilization(Fraction::ONE);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gpu.read_power(&mut rng), Power::from_watts(250.0));
    }

    #[test]
    fn nvml_noisy_power_never_negative() {
        let gpu = SimulatedNvml::new(DeviceSpec::Smartphone).with_noise(Power::from_watts(50.0));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(gpu.read_power(&mut rng) >= Power::ZERO);
        }
    }

    #[test]
    fn domain_display() {
        assert_eq!(RaplDomain::Package.to_string(), "package");
    }
}
