//! Parametric device power models.
//!
//! Every simulator in the workspace needs a mapping from *utilization* to
//! *power draw*. Real devices are measured; here the mapping is a calibrated
//! model. Two families are provided:
//!
//! * [`LinearPowerModel`] — `idle + (peak − idle) × u`, a good fit for
//!   accelerators under compute-bound load;
//! * [`SuperlinearPowerModel`] — `idle + (peak − idle) × u^α` with `α < 1`,
//!   capturing the empirical observation that power rises steeply at low
//!   utilization (voltage/frequency floors) and saturates near peak.
//!
//! [`DeviceSpec`] carries published idle/peak figures for the devices the
//! paper references (V100, A100, P100, TPUs, CPU servers, smartphones at 3 W,
//! home routers at 7.5 W).

use serde::{Deserialize, Serialize};
use std::fmt;

use sustain_core::units::{Fraction, Power};

/// A mapping from device utilization to instantaneous power draw.
///
/// Object-safe so heterogeneous device collections can be modeled as
/// `Vec<Box<dyn PowerModel>>`.
pub trait PowerModel {
    /// Instantaneous power at the given utilization.
    fn power(&self, utilization: Fraction) -> Power;

    /// Power when fully idle.
    fn idle_power(&self) -> Power {
        self.power(Fraction::ZERO)
    }

    /// Power at full utilization.
    fn peak_power(&self) -> Power {
        self.power(Fraction::ONE)
    }
}

/// `idle + (peak − idle) × u`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearPowerModel {
    idle: Power,
    peak: Power,
}

impl LinearPowerModel {
    /// Creates a linear model.
    ///
    /// # Panics
    ///
    /// Panics if `peak < idle` (debug builds assert this invariant).
    pub fn new(idle: Power, peak: Power) -> LinearPowerModel {
        debug_assert!(peak >= idle, "peak power must be at least idle power");
        LinearPowerModel { idle, peak }
    }
}

impl PowerModel for LinearPowerModel {
    fn power(&self, utilization: Fraction) -> Power {
        self.idle + (self.peak - self.idle) * utilization.value()
    }
}

/// `idle + (peak − idle) × u^α`; `α < 1` makes power rise steeply at low
/// utilization, the regime Figure 10's underutilized research GPUs sit in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuperlinearPowerModel {
    idle: Power,
    peak: Power,
    alpha: f64,
}

impl SuperlinearPowerModel {
    /// Creates a model with exponent `alpha` (must be positive).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `alpha <= 0` or `peak < idle`.
    pub fn new(idle: Power, peak: Power, alpha: f64) -> SuperlinearPowerModel {
        debug_assert!(alpha > 0.0, "alpha must be positive");
        debug_assert!(peak >= idle, "peak power must be at least idle power");
        SuperlinearPowerModel { idle, peak, alpha }
    }
}

impl PowerModel for SuperlinearPowerModel {
    fn power(&self, utilization: Fraction) -> Power {
        self.idle + (self.peak - self.idle) * utilization.value().powf(self.alpha)
    }
}

/// Published idle/peak figures for devices referenced in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeviceSpec {
    /// NVIDIA V100 (300 W TDP, 32 GB HBM2; the 2018 reference in Fig 2).
    V100,
    /// NVIDIA A100 (400 W TDP, 80 GB HBM2e; the 2021 reference in Fig 2).
    A100,
    /// NVIDIA P100 (250 W TDP; the `P100-Base` baseline of Fig 11).
    P100,
    /// Google TPU v3 (≈283 W per chip; the `TPU-Base` baseline of Fig 11).
    TpuV3,
    /// A dual-socket CPU inference server.
    CpuServer,
    /// DRAM, per 64 GB DIMM bank.
    DramBank,
    /// A client smartphone (paper's FL methodology: 3 W while training).
    Smartphone,
    /// A home Wi-Fi router (paper's FL methodology: 7.5 W while active).
    HomeRouter,
}

impl DeviceSpec {
    /// All specs, in declaration order.
    pub const ALL: [DeviceSpec; 8] = [
        DeviceSpec::V100,
        DeviceSpec::A100,
        DeviceSpec::P100,
        DeviceSpec::TpuV3,
        DeviceSpec::CpuServer,
        DeviceSpec::DramBank,
        DeviceSpec::Smartphone,
        DeviceSpec::HomeRouter,
    ];

    /// Idle power.
    pub fn idle(&self) -> Power {
        let w = match self {
            DeviceSpec::V100 => 40.0,
            DeviceSpec::A100 => 50.0,
            DeviceSpec::P100 => 30.0,
            DeviceSpec::TpuV3 => 55.0,
            DeviceSpec::CpuServer => 120.0,
            DeviceSpec::DramBank => 8.0,
            DeviceSpec::Smartphone => 0.5,
            DeviceSpec::HomeRouter => 6.0,
        };
        Power::from_watts(w)
    }

    /// Peak (TDP-like) power.
    pub fn peak(&self) -> Power {
        let w = match self {
            DeviceSpec::V100 => 300.0,
            DeviceSpec::A100 => 400.0,
            DeviceSpec::P100 => 250.0,
            DeviceSpec::TpuV3 => crate::constants::TPU_V3_PEAK_WATTS,
            DeviceSpec::CpuServer => 450.0,
            DeviceSpec::DramBank => 20.0,
            DeviceSpec::Smartphone => 3.0,
            DeviceSpec::HomeRouter => 7.5,
        };
        Power::from_watts(w)
    }

    /// Accelerator on-package memory capacity in GB, where meaningful.
    pub fn memory_gb(&self) -> Option<f64> {
        match self {
            DeviceSpec::V100 => Some(32.0),
            DeviceSpec::A100 => Some(80.0),
            DeviceSpec::P100 => Some(16.0),
            DeviceSpec::TpuV3 => Some(32.0),
            _ => None,
        }
    }

    /// A linear power model over the published idle/peak figures.
    pub fn power_model(&self) -> LinearPowerModel {
        LinearPowerModel::new(self.idle(), self.peak())
    }

    /// A superlinear power model (α = 0.6), the more realistic accelerator fit.
    pub fn superlinear_model(&self) -> SuperlinearPowerModel {
        SuperlinearPowerModel::new(self.idle(), self.peak(), 0.6)
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DeviceSpec::V100 => "v100",
            DeviceSpec::A100 => "a100",
            DeviceSpec::P100 => "p100",
            DeviceSpec::TpuV3 => "tpu-v3",
            DeviceSpec::CpuServer => "cpu-server",
            DeviceSpec::DramBank => "dram-bank",
            DeviceSpec::Smartphone => "smartphone",
            DeviceSpec::HomeRouter => "home-router",
        };
        f.write_str(name)
    }
}

/// A fixed-power device (always draws the same power while on), used for the
/// paper's FL methodology where devices and routers are modeled at constant
/// wattage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantPowerModel {
    power: Power,
}

impl ConstantPowerModel {
    /// Creates a constant-power model.
    pub fn new(power: Power) -> ConstantPowerModel {
        ConstantPowerModel { power }
    }
}

impl PowerModel for ConstantPowerModel {
    fn power(&self, _utilization: Fraction) -> Power {
        self.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_endpoints() {
        let m = LinearPowerModel::new(Power::from_watts(40.0), Power::from_watts(300.0));
        assert_eq!(m.idle_power(), Power::from_watts(40.0));
        assert_eq!(m.peak_power(), Power::from_watts(300.0));
        let half = m.power(Fraction::new(0.5).unwrap());
        assert!((half.as_watts() - 170.0).abs() < 1e-9);
    }

    #[test]
    fn superlinear_exceeds_linear_mid_range() {
        let spec = DeviceSpec::V100;
        let lin = spec.power_model();
        let sup = spec.superlinear_model();
        let u = Fraction::new(0.4).unwrap();
        assert!(sup.power(u) > lin.power(u));
        // Endpoints agree.
        assert_eq!(sup.idle_power(), lin.idle_power());
        assert!((sup.peak_power().as_watts() - lin.peak_power().as_watts()).abs() < 1e-9);
    }

    #[test]
    fn power_is_monotone_in_utilization() {
        for spec in DeviceSpec::ALL {
            let m = spec.power_model();
            let mut prev = Power::ZERO;
            for i in 0..=10 {
                let p = m.power(Fraction::new(i as f64 / 10.0).unwrap());
                assert!(p >= prev, "{spec} power not monotone");
                prev = p;
            }
        }
    }

    #[test]
    fn paper_fl_constants() {
        // The FL methodology assumes 3 W devices and 7.5 W routers.
        assert_eq!(DeviceSpec::Smartphone.peak(), Power::from_watts(3.0));
        assert_eq!(DeviceSpec::HomeRouter.peak(), Power::from_watts(7.5));
    }

    #[test]
    fn fig2_memory_growth_under_2x() {
        // V100 (2018) 32 GB → A100 (2021) 80 GB: < 2× every 2 years.
        let v = DeviceSpec::V100.memory_gb().unwrap();
        let a = DeviceSpec::A100.memory_gb().unwrap();
        let per_2y = (a / v).powf(2.0 / 3.0);
        assert!(per_2y < 2.0, "memory growth per 2y {per_2y}");
        assert!(DeviceSpec::CpuServer.memory_gb().is_none());
    }

    #[test]
    fn constant_model_ignores_utilization() {
        let m = ConstantPowerModel::new(Power::from_watts(7.5));
        assert_eq!(m.power(Fraction::ZERO), m.power(Fraction::ONE));
    }

    #[test]
    fn models_are_object_safe() {
        let devices: Vec<Box<dyn PowerModel>> = vec![
            Box::new(DeviceSpec::V100.power_model()),
            Box::new(ConstantPowerModel::new(Power::from_watts(3.0))),
        ];
        let total: Power = devices
            .iter()
            .map(|d| d.power(Fraction::ONE))
            .fold(Power::ZERO, |a, b| a + b);
        assert!((total.as_watts() - 303.0).abs() < 1e-9);
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceSpec::TpuV3.to_string(), "tpu-v3");
    }
}
