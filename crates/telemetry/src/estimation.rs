//! Bottom-up power estimation when meters are unavailable (§V-A).
//!
//! The open-source trackers the paper cites (CodeCarbon, experiment-impact-
//! tracker) often cannot read counters and fall back to **TDP-share
//! estimation**: `power ≈ TDP × utilization` (sometimes with a constant
//! fudge). This module implements that estimator and quantifies its error
//! against the metered ground truth of the simulated devices — the kind of
//! methodology validation the paper's "lack of common tools" discussion asks
//! for.

use serde::{Deserialize, Serialize};

use sustain_core::units::{Energy, Fraction, Power, TimeSpan};

use crate::device::PowerModel;

/// How an unmetered estimator guesses power from utilization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EstimationMethod {
    /// `power = TDP × utilization` — CodeCarbon's GPU default.
    TdpTimesUtilization,
    /// `power = TDP × 0.5` regardless of load — the crude constant fallback.
    HalfTdp,
    /// `power = idle + (TDP − idle) × utilization` — requires knowing idle
    /// power, matches a linear device exactly.
    LinearWithIdle {
        /// Assumed idle power as a fraction of TDP.
        idle_fraction: f64,
    },
}

impl EstimationMethod {
    /// Estimated power draw at a utilization, given the device's TDP.
    pub fn estimate_power(&self, tdp: Power, utilization: Fraction) -> Power {
        match self {
            EstimationMethod::TdpTimesUtilization => tdp * utilization.value(),
            EstimationMethod::HalfTdp => tdp * 0.5,
            EstimationMethod::LinearWithIdle { idle_fraction } => {
                tdp * *idle_fraction + tdp * (1.0 - idle_fraction) * utilization.value()
            }
        }
    }
}

/// The outcome of validating an estimator against metered ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimationError {
    /// Ground-truth energy from the device's power model.
    pub metered: Energy,
    /// The estimator's energy.
    pub estimated: Energy,
}

impl EstimationError {
    /// Signed relative error (positive = overestimate).
    pub fn relative_error(&self) -> f64 {
        if self.metered.is_zero() {
            return 0.0;
        }
        self.estimated / self.metered - 1.0
    }

    /// Absolute relative error.
    pub fn abs_relative_error(&self) -> f64 {
        self.relative_error().abs()
    }
}

/// Integrates both the metered ground truth and an estimator over a
/// utilization trajectory sampled at fixed steps, and reports the error.
///
/// # Panics
///
/// Panics if `step` or `duration` is not positive.
pub fn validate_estimator<M, F>(
    device: &M,
    tdp: Power,
    method: EstimationMethod,
    mut utilization: F,
    duration: TimeSpan,
    step: TimeSpan,
) -> EstimationError
where
    M: PowerModel + ?Sized,
    F: FnMut(TimeSpan) -> Fraction,
{
    assert!(step.as_secs() > 0.0, "step must be positive");
    assert!(duration.as_secs() > 0.0, "duration must be positive");
    let mut metered = Energy::ZERO;
    let mut estimated = Energy::ZERO;
    let mut t = TimeSpan::ZERO;
    while t < duration {
        let span = step.min(duration - t);
        let u = utilization(t);
        metered += device.power(u) * span;
        estimated += method.estimate_power(tdp, u) * span;
        t += step;
    }
    EstimationError { metered, estimated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceSpec, LinearPowerModel};

    fn half() -> Fraction {
        Fraction::saturating(0.5)
    }

    #[test]
    fn tdp_share_underestimates_at_low_utilization() {
        // Real devices draw idle power; TDP×u misses it — the documented bias
        // of utilization-share estimators.
        let v100 = DeviceSpec::V100.power_model();
        let err = validate_estimator(
            &v100,
            Power::from_watts(300.0),
            EstimationMethod::TdpTimesUtilization,
            |_| Fraction::saturating(0.2),
            TimeSpan::from_hours(1.0),
            TimeSpan::from_secs(60.0),
        );
        assert!(
            err.relative_error() < -0.2,
            "error {}",
            err.relative_error()
        );
    }

    #[test]
    fn linear_with_true_idle_is_exact_for_linear_devices() {
        let v100 = DeviceSpec::V100.power_model();
        let err = validate_estimator(
            &v100,
            Power::from_watts(300.0),
            EstimationMethod::LinearWithIdle {
                idle_fraction: 40.0 / 300.0,
            },
            |t| {
                if (t.as_minutes() as u64).is_multiple_of(2) {
                    Fraction::saturating(0.3)
                } else {
                    Fraction::saturating(0.9)
                }
            },
            TimeSpan::from_hours(1.0),
            TimeSpan::from_secs(30.0),
        );
        assert!(
            err.abs_relative_error() < 1e-9,
            "error {}",
            err.relative_error()
        );
    }

    #[test]
    fn half_tdp_is_exact_only_at_matching_load() {
        let flat = LinearPowerModel::new(Power::ZERO, Power::from_watts(300.0));
        let err = validate_estimator(
            &flat,
            Power::from_watts(300.0),
            EstimationMethod::HalfTdp,
            |_| half(),
            TimeSpan::from_hours(1.0),
            TimeSpan::from_secs(60.0),
        );
        assert!(err.abs_relative_error() < 1e-9);
        // At full load it underestimates by half.
        let err = validate_estimator(
            &flat,
            Power::from_watts(300.0),
            EstimationMethod::HalfTdp,
            |_| Fraction::ONE,
            TimeSpan::from_hours(1.0),
            TimeSpan::from_secs(60.0),
        );
        assert!((err.relative_error() + 0.5).abs() < 1e-9);
    }

    #[test]
    fn estimator_ranking_matches_methodology_expectations() {
        // Over a realistic mid-load trajectory, the idle-aware estimator beats
        // TDP-share, which beats the constant.
        let a100 = DeviceSpec::A100.power_model();
        let run = |method| {
            validate_estimator(
                &a100,
                Power::from_watts(400.0),
                method,
                |t| Fraction::saturating(0.3 + 0.2 * ((t.as_minutes() / 7.0).sin().abs())),
                TimeSpan::from_hours(2.0),
                TimeSpan::from_secs(60.0),
            )
            .abs_relative_error()
        };
        let idle_aware = run(EstimationMethod::LinearWithIdle {
            idle_fraction: 50.0 / 400.0,
        });
        let tdp_share = run(EstimationMethod::TdpTimesUtilization);
        assert!(idle_aware < tdp_share, "{idle_aware} vs {tdp_share}");
    }

    #[test]
    fn zero_metered_energy_reports_zero_error() {
        let e = EstimationError {
            metered: Energy::ZERO,
            estimated: Energy::from_joules(1.0),
        };
        assert_eq!(e.relative_error(), 0.0);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn rejects_zero_step() {
        let v100 = DeviceSpec::V100.power_model();
        let _ = validate_estimator(
            &v100,
            Power::from_watts(300.0),
            EstimationMethod::HalfTdp,
            |_| Fraction::ZERO,
            TimeSpan::from_secs(10.0),
            TimeSpan::ZERO,
        );
    }
}
