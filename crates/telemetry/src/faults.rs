//! Fault injection for the telemetry substrate.
//!
//! Every accounting path in this workspace historically assumed perfect,
//! gapless, monotone counters. Real fleet telemetry is none of those things:
//! collectors drop samples, RAPL registers wrap, NVML queries time out,
//! counters freeze, clocks skew, sensors glitch, and hosts crash mid-job.
//! [`FaultPlan`] describes a reproducible mixture of those faults and
//! [`FaultInjector`] applies it to a stream of power samples, so the
//! degradation-tolerant reading path ([`crate::meter::FaultTolerantIntegrator`],
//! [`crate::trace::PowerTrace::fill_gaps`]) can be exercised — and its
//! accounting error quantified — without real broken hardware.
//!
//! A zero-rate plan ([`FaultPlan::none`]) is a strict no-op: the injector
//! passes every sample through untouched and draws nothing from its RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sustain_core::quality::{FaultCounts, FaultKind};
use sustain_core::stats::{Normal, Sampler};
use sustain_core::units::{Energy, Fraction, Power, TimeSpan};
use sustain_obs::Obs;

/// How a reader back-fills energy across a gap in the sample stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ImputationPolicy {
    /// Bridge the gap with a straight line between the last and next good
    /// samples (requires seeing the far side; offline/batch readers).
    Linear,
    /// Hold the last observed power flat across the gap (the only option an
    /// online reader has; biased under varying load).
    LastObservation,
    /// Charge the gap at an assumed model power (e.g. the device's TDP share
    /// at its long-run mean utilization) — unmetered estimation as backfill.
    ModelBased {
        /// The assumed constant power across gaps.
        assumed: Power,
    },
}

/// A reproducible mixture of telemetry faults.
///
/// All probabilities are per-sample (or per-read). Fields are public so a
/// chaos harness can sweep them; the builder methods panic on out-of-range
/// inputs, matching the workspace's constructor-validation convention.
///
/// ```rust
/// use sustain_telemetry::faults::{FaultInjector, FaultPlan};
/// use sustain_core::units::{Power, TimeSpan};
///
/// let plan = FaultPlan::none().with_seed(7).with_dropout(0.5);
/// let mut inj = FaultInjector::new(&plan, "gpu0");
/// let interval = TimeSpan::from_secs(1.0);
/// let survivors = (0..100)
///     .filter(|i| {
///         inj.corrupt(interval * *i as f64, interval, Power::from_watts(100.0))
///             .is_some()
///     })
///     .count();
/// assert!(survivors > 20 && survivors < 80, "{survivors}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed decorrelating fault draws from the workload's own RNG stream.
    pub seed: u64,
    /// Per-sample probability that a reading is silently dropped.
    pub dropout: Fraction,
    /// Per-read probability that the query times out (NVML-style).
    pub timeout: Fraction,
    /// Per-sample probability that the counter freezes for
    /// [`FaultPlan::stuck_len`] reads.
    pub stuck: Fraction,
    /// Length of a stuck episode, in samples.
    pub stuck_len: u32,
    /// Counter wrap period in microjoules (`None` = the counter never wraps).
    pub wrap_uj: Option<u64>,
    /// Maximum timestamp jitter as a fraction of the sampling interval
    /// (a value ≤ 1 preserves sample ordering on a regular grid).
    pub clock_skew: Fraction,
    /// Per-sample probability of a Gaussian noise burst on the reading.
    pub noise_burst: Fraction,
    /// Standard deviation of a noise burst.
    pub noise_burst_std: Power,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The fault-free plan: every rate zero, no wraparound. Injectors built
    /// from it are strict no-ops.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            dropout: Fraction::ZERO,
            timeout: Fraction::ZERO,
            stuck: Fraction::ZERO,
            stuck_len: 0,
            wrap_uj: None,
            clock_skew: Fraction::ZERO,
            noise_burst: Fraction::ZERO,
            noise_burst_std: Power::ZERO,
        }
    }

    /// A provenanced "routinely degraded collector" preset: percent-level
    /// dropout, sub-percent timeouts/stuck episodes, occasional noise bursts,
    /// quarter-interval clock skew, and a 32-bit RAPL wrap period (see
    /// `crate::constants` for sources).
    pub fn degraded() -> FaultPlan {
        FaultPlan {
            seed: 0,
            dropout: Fraction::saturating(crate::constants::DEFAULT_DROPOUT_RATE),
            timeout: Fraction::saturating(crate::constants::DEFAULT_TIMEOUT_RATE),
            stuck: Fraction::saturating(crate::constants::DEFAULT_STUCK_RATE),
            stuck_len: crate::constants::DEFAULT_STUCK_LEN,
            wrap_uj: Some(crate::constants::RAPL_WRAP_UJ),
            clock_skew: Fraction::saturating(crate::constants::DEFAULT_CLOCK_SKEW),
            noise_burst: Fraction::saturating(crate::constants::DEFAULT_NOISE_BURST_RATE),
            noise_burst_std: Power::from_watts(crate::constants::NOISE_BURST_STD_WATTS),
        }
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Sets the dropout probability.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1]`.
    pub fn with_dropout(mut self, rate: f64) -> FaultPlan {
        self.dropout = checked_probability(rate, "dropout");
        self
    }

    /// Sets the read-timeout probability.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1]`.
    pub fn with_timeout(mut self, rate: f64) -> FaultPlan {
        self.timeout = checked_probability(rate, "timeout");
        self
    }

    /// Sets the stuck-counter episode probability and length.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1]`.
    pub fn with_stuck(mut self, rate: f64, len: u32) -> FaultPlan {
        self.stuck = checked_probability(rate, "stuck");
        self.stuck_len = len;
        self
    }

    /// Enables counter wraparound with the given period in microjoules.
    ///
    /// # Panics
    ///
    /// Panics if `period_uj` is zero.
    pub fn with_wrap(mut self, period_uj: u64) -> FaultPlan {
        assert!(period_uj > 0, "wrap period must be positive");
        self.wrap_uj = Some(period_uj);
        self
    }

    /// Sets the maximum clock skew as a fraction of the sampling interval.
    ///
    /// # Panics
    ///
    /// Panics unless `max_fraction` is in `[0, 1]`.
    pub fn with_clock_skew(mut self, max_fraction: f64) -> FaultPlan {
        self.clock_skew = checked_probability(max_fraction, "clock skew");
        self
    }

    /// Sets the noise-burst probability and amplitude.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1]` or if `std` is negative.
    pub fn with_noise_burst(mut self, rate: f64, std: Power) -> FaultPlan {
        assert!(std >= Power::ZERO, "noise std must be non-negative");
        self.noise_burst = checked_probability(rate, "noise burst");
        self.noise_burst_std = std;
        self
    }

    /// Whether this plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.dropout == Fraction::ZERO
            && self.timeout == Fraction::ZERO
            && self.stuck == Fraction::ZERO
            && self.clock_skew == Fraction::ZERO
            && self.noise_burst == Fraction::ZERO
            && self.wrap_uj.is_none()
    }
}

fn checked_probability(rate: f64, what: &str) -> Fraction {
    assert!(
        (0.0..=1.0).contains(&rate),
        "{what} probability must be in [0, 1], got {rate}"
    );
    Fraction::saturating(rate)
}

/// FNV-1a over a stream label, used to decorrelate per-stream RNGs derived
/// from one plan seed.
fn stream_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Applies a [`FaultPlan`] to one telemetry stream, deterministically.
///
/// Two injectors built from the same plan and stream label corrupt a sample
/// sequence identically; different stream labels get decorrelated fault
/// draws from the same plan seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    stuck_remaining: u32,
    last_reported: Option<Power>,
    counts: FaultCounts,
    obs: Obs,
}

/// Static label for a fault class, used as a structured event attribute and
/// a per-kind counter suffix.
fn kind_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Dropout => "dropout",
        FaultKind::CounterWrap => "counter_wrap",
        FaultKind::ReadTimeout => "read_timeout",
        FaultKind::StuckCounter => "stuck_counter",
        FaultKind::ClockSkew => "clock_skew",
        FaultKind::NoiseBurst => "noise_burst",
        FaultKind::HostCrash => "host_crash",
        FaultKind::OutOfOrder => "out_of_order",
        FaultKind::QueueDrop => "queue_drop",
        FaultKind::LateArrival => "late_arrival",
        // `FaultKind` is non-exhaustive; a future class keeps compiling.
        _ => "other",
    }
}

/// Per-kind counter name (static, one per [`FaultKind`] variant).
fn kind_counter(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Dropout => "telemetry_faults_dropout_total",
        FaultKind::CounterWrap => "telemetry_faults_counter_wrap_total",
        FaultKind::ReadTimeout => "telemetry_faults_read_timeout_total",
        FaultKind::StuckCounter => "telemetry_faults_stuck_counter_total",
        FaultKind::ClockSkew => "telemetry_faults_clock_skew_total",
        FaultKind::NoiseBurst => "telemetry_faults_noise_burst_total",
        FaultKind::HostCrash => "telemetry_faults_host_crash_total",
        FaultKind::OutOfOrder => "telemetry_faults_out_of_order_total",
        FaultKind::QueueDrop => "telemetry_faults_queue_drop_total",
        FaultKind::LateArrival => "telemetry_faults_late_arrival_total",
        _ => "telemetry_faults_other_total",
    }
}

impl FaultInjector {
    /// Creates an injector for one named stream.
    pub fn new(plan: &FaultPlan, stream: &str) -> FaultInjector {
        FaultInjector {
            plan: *plan,
            rng: StdRng::seed_from_u64(plan.seed ^ stream_hash(stream)),
            stuck_remaining: 0,
            last_reported: None,
            counts: FaultCounts::default(),
            obs: sustain_obs::handle(),
        }
    }

    /// Replaces the observability handle captured at construction. Every
    /// injected fault then emits a structured `telemetry.fault` event (with
    /// its class as an attribute) and bumps a per-kind counter.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> FaultInjector {
        self.obs = obs.clone();
        self
    }

    /// Tallies one injected fault and reports it through the obs handle.
    fn record_fault(&mut self, kind: FaultKind, at: TimeSpan) {
        self.counts.record(kind);
        if self.obs.enabled() {
            self.obs.event(
                "telemetry.fault",
                &[
                    ("kind", kind_label(kind).into()),
                    ("at_s", at.as_secs().into()),
                ],
            );
            self.obs.counter(kind_counter(kind)).inc();
        }
    }

    /// The plan this injector applies.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Fault tallies so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    fn hit(&mut self, p: Fraction) -> bool {
        p > Fraction::ZERO && self.rng.gen_bool(p.value())
    }

    /// Passes one `(timestamp, power)` sample through the fault mixture.
    ///
    /// Returns `None` when the sample is lost (dropout or read timeout) and
    /// the possibly-corrupted sample otherwise. `interval` is the nominal
    /// sampling period, used to scale clock skew. With a zero-rate plan the
    /// sample is returned untouched and the RNG is never consulted.
    pub fn corrupt(
        &mut self,
        at: TimeSpan,
        interval: TimeSpan,
        truth: Power,
    ) -> Option<(TimeSpan, Power)> {
        if self.plan.is_none() {
            return Some((at, truth));
        }
        if self.hit(self.plan.dropout) {
            self.record_fault(FaultKind::Dropout, at);
            return None;
        }
        if self.hit(self.plan.timeout) {
            self.record_fault(FaultKind::ReadTimeout, at);
            return None;
        }

        let mut power = truth;
        if self.stuck_remaining > 0 {
            self.stuck_remaining -= 1;
            power = self.last_reported.unwrap_or(truth);
            self.record_fault(FaultKind::StuckCounter, at);
        } else if self.plan.stuck_len > 0 && self.hit(self.plan.stuck) {
            // The *current* read already returns the stale value.
            self.stuck_remaining = self.plan.stuck_len.saturating_sub(1);
            power = self.last_reported.unwrap_or(truth);
            self.record_fault(FaultKind::StuckCounter, at);
        }

        if self.hit(self.plan.noise_burst) && self.plan.noise_burst_std > Power::ZERO {
            let noise = Normal::new(0.0, self.plan.noise_burst_std.as_watts())
                // lint:allow(panic-discipline) with_noise_burst validates the std non-negative
                .expect("noise std validated in with_noise_burst")
                .sample(&mut self.rng);
            power = Power::from_watts((power.as_watts() + noise).max(0.0));
            self.record_fault(FaultKind::NoiseBurst, at);
        }

        let mut t = at;
        if self.plan.clock_skew > Fraction::ZERO {
            let jitter: f64 = (self.rng.gen::<f64>() - 0.5) * self.plan.clock_skew.value();
            t = at + interval * jitter;
            if t < TimeSpan::ZERO {
                t = TimeSpan::ZERO;
            }
            self.record_fault(FaultKind::ClockSkew, at);
        }

        self.last_reported = Some(power);
        Some((t, power))
    }
}

/// Wraparound-aware delta between two cumulative microjoule counter readings.
///
/// With `wrap_uj = None` this behaves like a saturating subtraction (a
/// backwards counter yields zero — the legacy, wrap-oblivious reading). With
/// a wrap period, a reading below its predecessor is interpreted as exactly
/// one rollover, which is how production RAPL readers recover the true delta.
/// Reading faster than one wrap period is the caller's responsibility, as on
/// real hardware.
pub fn wrapping_delta(before_uj: u64, after_uj: u64, wrap_uj: Option<u64>) -> Energy {
    let uj = match wrap_uj {
        None => after_uj.saturating_sub(before_uj),
        Some(period) => {
            let before = before_uj % period;
            let after = after_uj % period;
            if after >= before {
                after - before
            } else {
                period - before + after
            }
        }
    };
    Energy::from_joules(uj as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_all(inj: &mut FaultInjector, n: usize) -> Vec<Option<(TimeSpan, Power)>> {
        let interval = TimeSpan::from_secs(1.0);
        (0..n)
            .map(|i| inj.corrupt(interval * i as f64, interval, Power::from_watts(100.0)))
            .collect()
    }

    #[test]
    fn zero_plan_is_strict_noop() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut inj = FaultInjector::new(&plan, "s");
        let out = sample_all(&mut inj, 50);
        for (i, s) in out.iter().enumerate() {
            let (t, p) = s.expect("no sample may be lost");
            assert_eq!(t, TimeSpan::from_secs(i as f64));
            assert_eq!(p, Power::from_watts(100.0));
        }
        assert!(inj.counts().is_empty());
    }

    #[test]
    fn injector_is_deterministic_per_stream() {
        let plan = FaultPlan::degraded().with_seed(42).with_dropout(0.3);
        let a = sample_all(&mut FaultInjector::new(&plan, "gpu0"), 200);
        let b = sample_all(&mut FaultInjector::new(&plan, "gpu0"), 200);
        assert_eq!(a, b);
        let c = sample_all(&mut FaultInjector::new(&plan, "gpu1"), 200);
        assert_ne!(a, c, "streams must be decorrelated");
    }

    #[test]
    fn dropout_rate_is_respected() {
        let plan = FaultPlan::none().with_seed(1).with_dropout(0.25);
        let mut inj = FaultInjector::new(&plan, "s");
        let lost = sample_all(&mut inj, 4000)
            .iter()
            .filter(|s| s.is_none())
            .count();
        let rate = lost as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed dropout {rate}");
        assert_eq!(inj.counts().dropouts, lost as u64);
    }

    #[test]
    fn stuck_episodes_repeat_the_last_value() {
        let plan = FaultPlan::none().with_seed(3).with_stuck(0.05, 4);
        let mut inj = FaultInjector::new(&plan, "s");
        let interval = TimeSpan::from_secs(1.0);
        let mut prev = None;
        let mut repeats = 0;
        for i in 0..2000 {
            // Ramp so the truth is never equal between consecutive reads.
            let truth = Power::from_watts(100.0 + i as f64);
            if let Some((_, p)) = inj.corrupt(interval * i as f64, interval, truth) {
                if prev == Some(p) {
                    repeats += 1;
                }
                prev = Some(p);
            }
        }
        assert!(repeats > 0, "stuck episodes must repeat values");
        assert!(inj.counts().stuck_reads > 0);
    }

    #[test]
    fn noise_bursts_never_go_negative() {
        let plan = FaultPlan::none()
            .with_seed(4)
            .with_noise_burst(1.0, Power::from_watts(500.0));
        let mut inj = FaultInjector::new(&plan, "s");
        let interval = TimeSpan::from_secs(1.0);
        for i in 0..500 {
            let (_, p) = inj
                .corrupt(interval * i as f64, interval, Power::from_watts(10.0))
                .expect("no losses in this plan");
            assert!(p >= Power::ZERO);
        }
        assert_eq!(inj.counts().noise_bursts, 500);
    }

    #[test]
    fn clock_skew_preserves_grid_order() {
        let plan = FaultPlan::none().with_seed(5).with_clock_skew(1.0);
        let mut inj = FaultInjector::new(&plan, "s");
        let interval = TimeSpan::from_secs(1.0);
        let mut last = TimeSpan::from_secs(-1.0);
        for i in 0..1000 {
            let (t, _) = inj
                .corrupt(interval * i as f64, interval, Power::from_watts(1.0))
                .expect("no losses in this plan");
            assert!(t >= last, "skewed timestamps must stay ordered");
            last = t;
        }
    }

    #[test]
    fn wrapping_delta_recovers_rollover() {
        let wrap = Some(1000u64);
        // 990 → 40 across a 1000 µJ wrap: true delta 50 µJ.
        let e = wrapping_delta(990, 40, wrap);
        assert!((e.as_joules() - 50e-6).abs() < 1e-15);
        // Wrap-oblivious reading loses the delta entirely.
        assert_eq!(wrapping_delta(990, 40, None), Energy::ZERO);
        // Forward deltas agree in both modes.
        assert_eq!(
            wrapping_delta(100, 400, wrap),
            wrapping_delta(100, 400, None)
        );
    }

    #[test]
    fn degraded_preset_reports_every_fault_class_eventually() {
        let plan = FaultPlan::degraded().with_seed(9);
        let mut inj = FaultInjector::new(&plan, "s");
        let _ = sample_all(&mut inj, 20_000);
        let c = inj.counts();
        assert!(c.dropouts > 0, "dropouts");
        assert!(c.timeouts > 0, "timeouts");
        assert!(c.stuck_reads > 0, "stuck");
        assert!(c.noise_bursts > 0, "bursts");
        assert!(c.skewed_timestamps > 0, "skew");
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn rejects_out_of_range_rate() {
        let _ = FaultPlan::none().with_dropout(1.5);
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan::degraded().with_seed(11);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
