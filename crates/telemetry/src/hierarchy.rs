//! Hierarchical telemetry roll-ups: device → host → rack → cluster.
//!
//! Fleet telemetry is consumed at aggregation levels — a researcher sees
//! their job's GPUs, a capacity planner sees racks, the sustainability team
//! sees clusters. [`TraceTree`] stores labelled per-device traces in a
//! hierarchy and rolls power/energy up any subtree.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use sustain_core::units::{Energy, Power};

use crate::trace::PowerTrace;

/// A node path like `"cluster0/rack3/host12/gpu5"`. Segments are separated by
/// `/`; every prefix is an aggregation point.
pub type NodePath = String;

/// A hierarchy of labelled power traces with subtree roll-ups.
///
/// ```rust
/// use sustain_telemetry::hierarchy::TraceTree;
/// use sustain_telemetry::trace::PowerTrace;
/// use sustain_core::units::{Power, TimeSpan};
///
/// let mut tree = TraceTree::new();
/// let mut gpu = PowerTrace::new();
/// gpu.push(TimeSpan::from_secs(0.0), Power::from_watts(300.0));
/// gpu.push(TimeSpan::from_secs(3600.0), Power::from_watts(300.0));
/// tree.insert("rack0/host0/gpu0", gpu.clone());
/// tree.insert("rack0/host0/gpu1", gpu);
/// // The rack subtree rolls both GPUs up.
/// assert!((tree.subtree_energy("rack0").as_watt_hours() - 600.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceTree {
    leaves: BTreeMap<NodePath, PowerTrace>,
}

impl TraceTree {
    /// Creates an empty tree.
    pub fn new() -> TraceTree {
        TraceTree::default()
    }

    /// Inserts (or replaces) a leaf trace at a path.
    pub fn insert(&mut self, path: impl Into<NodePath>, trace: PowerTrace) -> &mut TraceTree {
        self.leaves.insert(path.into(), trace);
        self
    }

    /// The trace at an exact leaf path.
    pub fn leaf(&self, path: &str) -> Option<&PowerTrace> {
        self.leaves.get(path)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Iterates leaves under a subtree prefix (`""` = the whole tree).
    pub fn subtree(&self, prefix: &str) -> impl Iterator<Item = (&str, &PowerTrace)> {
        let prefix = prefix.trim_end_matches('/').to_owned();
        self.leaves.iter().filter_map(move |(path, trace)| {
            let matches =
                prefix.is_empty() || path == &prefix || path.starts_with(&format!("{prefix}/"));
            matches.then_some((path.as_str(), trace))
        })
    }

    /// Total energy of a subtree.
    pub fn subtree_energy(&self, prefix: &str) -> Energy {
        self.subtree(prefix).map(|(_, t)| t.energy()).sum()
    }

    /// Combined power trace of a subtree (point-wise sum on the union grid).
    pub fn subtree_trace(&self, prefix: &str) -> PowerTrace {
        self.subtree(prefix)
            .fold(PowerTrace::new(), |acc, (_, t)| acc.combine(t))
    }

    /// Peak combined power of a subtree.
    pub fn subtree_peak(&self, prefix: &str) -> Power {
        self.subtree_trace(prefix).peak_power()
    }

    /// Energy per direct child of a prefix — a capacity planner's rack view.
    pub fn children_energy(&self, prefix: &str) -> BTreeMap<String, Energy> {
        let prefix = prefix.trim_end_matches('/');
        let skip = if prefix.is_empty() {
            0
        } else {
            prefix.len() + 1
        };
        let mut out: BTreeMap<String, Energy> = BTreeMap::new();
        for (path, trace) in self.subtree(prefix) {
            let rest = &path[skip.min(path.len())..];
            let child = rest.split('/').next().unwrap_or(rest).to_owned();
            if child.is_empty() {
                continue;
            }
            *out.entry(child).or_insert(Energy::ZERO) += trace.energy();
        }
        out
    }
}

/// Online energy roll-up: cumulative energy at every aggregation prefix.
///
/// Where [`TraceTree::subtree_energy`] recomputes a roll-up from the full
/// leaf traces on demand, an `EnergyRollup` is maintained *incrementally*:
/// each [`add`](EnergyRollup::add) credits a leaf's energy delta to the
/// leaf and every ancestor prefix (plus the root `""`), so rack- and
/// cluster-level totals are readable at any point mid-stream without
/// touching the traces. The streaming pipeline updates one of these on
/// every flush.
///
/// ```rust
/// use sustain_telemetry::hierarchy::EnergyRollup;
/// use sustain_core::units::Energy;
///
/// let mut rollup = EnergyRollup::new();
/// rollup.add("rack0/host0/gpu0", Energy::from_watt_hours(300.0));
/// rollup.add("rack0/host1/gpu0", Energy::from_watt_hours(250.0));
/// assert!((rollup.energy("rack0").as_watt_hours() - 550.0).abs() < 1e-9);
/// assert!((rollup.energy("").as_watt_hours() - 550.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyRollup {
    nodes: BTreeMap<NodePath, Energy>,
}

impl EnergyRollup {
    /// Creates an empty roll-up.
    pub fn new() -> EnergyRollup {
        EnergyRollup::default()
    }

    /// Credits `delta` to `path` and every ancestor prefix, including the
    /// root `""`. Leading/trailing `/` are ignored.
    pub fn add(&mut self, path: &str, delta: Energy) {
        let path = path.trim_matches('/');
        self.bump("", delta);
        if path.is_empty() {
            return;
        }
        for (i, byte) in path.bytes().enumerate() {
            if byte == b'/' {
                self.bump(&path[..i], delta);
            }
        }
        self.bump(path, delta);
    }

    /// Credits one node, allocating its key only on first sight so a
    /// steady-state maintainer (re-`add`ing the same paths every flush)
    /// never allocates.
    fn bump(&mut self, key: &str, delta: Energy) {
        if let Some(node) = self.nodes.get_mut(key) {
            *node += delta;
        } else {
            self.nodes.insert(key.to_owned(), delta);
        }
    }

    /// Zeroes every node total in place, keeping the allocated key set, so
    /// a maintainer that recomputes totals from scratch each flush (the
    /// streaming pipeline's determinism contract) reuses the path strings
    /// instead of rebuilding the map. Energy totals are monotone, so a key
    /// that was live stays live: no stale zero nodes accumulate.
    pub fn zero(&mut self) {
        for node in self.nodes.values_mut() {
            *node = Energy::ZERO;
        }
    }

    /// Cumulative energy at a node (`""` = the whole hierarchy). Unknown
    /// paths are zero.
    pub fn energy(&self, prefix: &str) -> Energy {
        self.nodes
            .get(prefix.trim_matches('/'))
            .copied()
            .unwrap_or(Energy::ZERO)
    }

    /// Energy per direct child of a prefix — the online rack view.
    pub fn children(&self, prefix: &str) -> BTreeMap<String, Energy> {
        let prefix = prefix.trim_matches('/');
        let mut out = BTreeMap::new();
        for (path, energy) in &self.nodes {
            if path.is_empty() {
                continue;
            }
            let rest = if prefix.is_empty() {
                path.as_str()
            } else {
                match path.strip_prefix(prefix).and_then(|r| r.strip_prefix('/')) {
                    Some(rest) => rest,
                    None => continue,
                }
            };
            if !rest.is_empty() && !rest.contains('/') {
                out.insert(rest.to_owned(), *energy);
            }
        }
        out
    }

    /// Number of tracked nodes (every prefix counts, including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no energy has been credited yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl FromIterator<(NodePath, PowerTrace)> for TraceTree {
    fn from_iter<I: IntoIterator<Item = (NodePath, PowerTrace)>>(iter: I) -> TraceTree {
        TraceTree {
            leaves: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_core::units::TimeSpan;

    fn constant_trace(watts: f64, hours: f64) -> PowerTrace {
        let mut t = PowerTrace::new();
        t.push(TimeSpan::ZERO, Power::from_watts(watts));
        t.push(TimeSpan::from_hours(hours), Power::from_watts(watts));
        t
    }

    fn tree() -> TraceTree {
        let mut tree = TraceTree::new();
        tree.insert("c0/r0/h0/gpu0", constant_trace(300.0, 1.0));
        tree.insert("c0/r0/h0/gpu1", constant_trace(300.0, 1.0));
        tree.insert("c0/r0/h1/gpu0", constant_trace(250.0, 1.0));
        tree.insert("c0/r1/h0/gpu0", constant_trace(400.0, 1.0));
        tree.insert("c1/r0/h0/gpu0", constant_trace(100.0, 1.0));
        tree
    }

    #[test]
    fn subtree_energy_rolls_up_each_level() {
        let t = tree();
        assert!((t.subtree_energy("c0/r0/h0").as_watt_hours() - 600.0).abs() < 1e-6);
        assert!((t.subtree_energy("c0/r0").as_watt_hours() - 850.0).abs() < 1e-6);
        assert!((t.subtree_energy("c0").as_watt_hours() - 1250.0).abs() < 1e-6);
        assert!((t.subtree_energy("").as_watt_hours() - 1350.0).abs() < 1e-6);
    }

    #[test]
    fn prefix_matching_is_segment_aware() {
        let mut t = TraceTree::new();
        t.insert("rack1/gpu0", constant_trace(100.0, 1.0));
        t.insert("rack10/gpu0", constant_trace(100.0, 1.0));
        // "rack1" must not match "rack10".
        assert!((t.subtree_energy("rack1").as_watt_hours() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn subtree_trace_sums_power_pointwise() {
        let t = tree();
        let rack = t.subtree_trace("c0/r0");
        let mid = rack.power_at(TimeSpan::from_minutes(30.0)).unwrap();
        assert!((mid.as_watts() - 850.0).abs() < 1e-6);
        assert!((t.subtree_peak("c0/r0").as_watts() - 850.0).abs() < 1e-6);
    }

    #[test]
    fn children_energy_gives_the_rack_view() {
        let t = tree();
        let by_rack = t.children_energy("c0");
        assert_eq!(by_rack.len(), 2);
        assert!((by_rack["r0"].as_watt_hours() - 850.0).abs() < 1e-6);
        assert!((by_rack["r1"].as_watt_hours() - 400.0).abs() < 1e-6);
        let by_cluster = t.children_energy("");
        assert_eq!(by_cluster.len(), 2);
    }

    #[test]
    fn empty_subtree_is_zero() {
        let t = tree();
        assert!(t.subtree_energy("does-not-exist").is_zero());
        assert!(t.subtree_trace("does-not-exist").is_empty());
    }

    #[test]
    fn leaf_access_and_len() {
        let t = tree();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert!(t.leaf("c0/r0/h0/gpu0").is_some());
        assert!(
            t.leaf("c0/r0/h0").is_none(),
            "interior nodes are not leaves"
        );
    }

    #[test]
    fn rollup_credits_every_ancestor() {
        let mut rollup = EnergyRollup::new();
        rollup.add("c0/r0/h0/gpu0", Energy::from_watt_hours(300.0));
        rollup.add("c0/r0/h1/gpu0", Energy::from_watt_hours(250.0));
        rollup.add("c0/r1/h0/gpu0", Energy::from_watt_hours(400.0));
        rollup.add("c1/r0/h0/gpu0", Energy::from_watt_hours(100.0));
        for (prefix, wh) in [
            ("", 1050.0),
            ("c0", 950.0),
            ("c0/r0", 550.0),
            ("c0/r0/h0", 300.0),
            ("c0/r0/h0/gpu0", 300.0),
            ("c1", 100.0),
        ] {
            assert!(
                (rollup.energy(prefix).as_watt_hours() - wh).abs() < 1e-9,
                "{prefix}: {} vs {wh}",
                rollup.energy(prefix).as_watt_hours()
            );
        }
        assert!(rollup.energy("does-not-exist").is_zero());
    }

    #[test]
    fn rollup_accumulates_incremental_deltas() {
        let mut rollup = EnergyRollup::new();
        rollup.add("r0/h0", Energy::from_joules(10.0));
        rollup.add("r0/h0", Energy::from_joules(5.0));
        rollup.add("r0/h1", Energy::from_joules(1.0));
        assert!((rollup.energy("r0/h0").as_joules() - 15.0).abs() < 1e-12);
        assert!((rollup.energy("r0").as_joules() - 16.0).abs() < 1e-12);
        assert!((rollup.energy("").as_joules() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn rollup_matches_tree_subtree_energy() {
        // An incrementally maintained roll-up of the same leaves agrees
        // with the recompute-from-traces path at every prefix.
        let t = tree();
        let mut rollup = EnergyRollup::new();
        for (path, trace) in t.subtree("") {
            rollup.add(path, trace.energy());
        }
        for prefix in ["", "c0", "c0/r0", "c0/r0/h0", "c0/r1", "c1"] {
            let online = rollup.energy(prefix).as_watt_hours();
            let recomputed = t.subtree_energy(prefix).as_watt_hours();
            assert!(
                (online - recomputed).abs() < 1e-9,
                "{prefix}: {online} vs {recomputed}"
            );
        }
    }

    #[test]
    fn rollup_children_give_the_rack_view() {
        let t = tree();
        let mut rollup = EnergyRollup::new();
        for (path, trace) in t.subtree("") {
            rollup.add(path, trace.energy());
        }
        let by_rack = rollup.children("c0");
        assert_eq!(by_rack.len(), 2);
        assert!((by_rack["r0"].as_watt_hours() - 850.0).abs() < 1e-9);
        assert!((by_rack["r1"].as_watt_hours() - 400.0).abs() < 1e-9);
        assert_eq!(rollup.children("").len(), 2);
        assert!(rollup.children("c1/r0/h0/gpu0").is_empty());
    }

    #[test]
    fn rollup_normalizes_slashes() {
        let mut rollup = EnergyRollup::new();
        rollup.add("/r0/h0/", Energy::from_joules(2.0));
        assert!((rollup.energy("r0").as_joules() - 2.0).abs() < 1e-12);
        assert!((rollup.energy("/r0/").as_joules() - 2.0).abs() < 1e-12);
        assert!(!rollup.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let t: TraceTree = vec![
            ("a/b".to_owned(), constant_trace(1.0, 1.0)),
            ("a/c".to_owned(), constant_trace(2.0, 1.0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 2);
        assert!((t.subtree_energy("a").as_watt_hours() - 3.0).abs() < 1e-9);
    }
}
