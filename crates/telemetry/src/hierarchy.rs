//! Hierarchical telemetry roll-ups: device → host → rack → cluster.
//!
//! Fleet telemetry is consumed at aggregation levels — a researcher sees
//! their job's GPUs, a capacity planner sees racks, the sustainability team
//! sees clusters. [`TraceTree`] stores labelled per-device traces in a
//! hierarchy and rolls power/energy up any subtree.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use sustain_core::units::{Energy, Power};

use crate::trace::PowerTrace;

/// A node path like `"cluster0/rack3/host12/gpu5"`. Segments are separated by
/// `/`; every prefix is an aggregation point.
pub type NodePath = String;

/// A hierarchy of labelled power traces with subtree roll-ups.
///
/// ```rust
/// use sustain_telemetry::hierarchy::TraceTree;
/// use sustain_telemetry::trace::PowerTrace;
/// use sustain_core::units::{Power, TimeSpan};
///
/// let mut tree = TraceTree::new();
/// let mut gpu = PowerTrace::new();
/// gpu.push(TimeSpan::from_secs(0.0), Power::from_watts(300.0));
/// gpu.push(TimeSpan::from_secs(3600.0), Power::from_watts(300.0));
/// tree.insert("rack0/host0/gpu0", gpu.clone());
/// tree.insert("rack0/host0/gpu1", gpu);
/// // The rack subtree rolls both GPUs up.
/// assert!((tree.subtree_energy("rack0").as_watt_hours() - 600.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceTree {
    leaves: BTreeMap<NodePath, PowerTrace>,
}

impl TraceTree {
    /// Creates an empty tree.
    pub fn new() -> TraceTree {
        TraceTree::default()
    }

    /// Inserts (or replaces) a leaf trace at a path.
    pub fn insert(&mut self, path: impl Into<NodePath>, trace: PowerTrace) -> &mut TraceTree {
        self.leaves.insert(path.into(), trace);
        self
    }

    /// The trace at an exact leaf path.
    pub fn leaf(&self, path: &str) -> Option<&PowerTrace> {
        self.leaves.get(path)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Iterates leaves under a subtree prefix (`""` = the whole tree).
    pub fn subtree(&self, prefix: &str) -> impl Iterator<Item = (&str, &PowerTrace)> {
        let prefix = prefix.trim_end_matches('/').to_owned();
        self.leaves.iter().filter_map(move |(path, trace)| {
            let matches =
                prefix.is_empty() || path == &prefix || path.starts_with(&format!("{prefix}/"));
            matches.then_some((path.as_str(), trace))
        })
    }

    /// Total energy of a subtree.
    pub fn subtree_energy(&self, prefix: &str) -> Energy {
        self.subtree(prefix).map(|(_, t)| t.energy()).sum()
    }

    /// Combined power trace of a subtree (point-wise sum on the union grid).
    pub fn subtree_trace(&self, prefix: &str) -> PowerTrace {
        self.subtree(prefix)
            .fold(PowerTrace::new(), |acc, (_, t)| acc.combine(t))
    }

    /// Peak combined power of a subtree.
    pub fn subtree_peak(&self, prefix: &str) -> Power {
        self.subtree_trace(prefix).peak_power()
    }

    /// Energy per direct child of a prefix — a capacity planner's rack view.
    pub fn children_energy(&self, prefix: &str) -> BTreeMap<String, Energy> {
        let prefix = prefix.trim_end_matches('/');
        let skip = if prefix.is_empty() {
            0
        } else {
            prefix.len() + 1
        };
        let mut out: BTreeMap<String, Energy> = BTreeMap::new();
        for (path, trace) in self.subtree(prefix) {
            let rest = &path[skip.min(path.len())..];
            let child = rest.split('/').next().unwrap_or(rest).to_owned();
            if child.is_empty() {
                continue;
            }
            *out.entry(child).or_insert(Energy::ZERO) += trace.energy();
        }
        out
    }
}

impl FromIterator<(NodePath, PowerTrace)> for TraceTree {
    fn from_iter<I: IntoIterator<Item = (NodePath, PowerTrace)>>(iter: I) -> TraceTree {
        TraceTree {
            leaves: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_core::units::TimeSpan;

    fn constant_trace(watts: f64, hours: f64) -> PowerTrace {
        let mut t = PowerTrace::new();
        t.push(TimeSpan::ZERO, Power::from_watts(watts));
        t.push(TimeSpan::from_hours(hours), Power::from_watts(watts));
        t
    }

    fn tree() -> TraceTree {
        let mut tree = TraceTree::new();
        tree.insert("c0/r0/h0/gpu0", constant_trace(300.0, 1.0));
        tree.insert("c0/r0/h0/gpu1", constant_trace(300.0, 1.0));
        tree.insert("c0/r0/h1/gpu0", constant_trace(250.0, 1.0));
        tree.insert("c0/r1/h0/gpu0", constant_trace(400.0, 1.0));
        tree.insert("c1/r0/h0/gpu0", constant_trace(100.0, 1.0));
        tree
    }

    #[test]
    fn subtree_energy_rolls_up_each_level() {
        let t = tree();
        assert!((t.subtree_energy("c0/r0/h0").as_watt_hours() - 600.0).abs() < 1e-6);
        assert!((t.subtree_energy("c0/r0").as_watt_hours() - 850.0).abs() < 1e-6);
        assert!((t.subtree_energy("c0").as_watt_hours() - 1250.0).abs() < 1e-6);
        assert!((t.subtree_energy("").as_watt_hours() - 1350.0).abs() < 1e-6);
    }

    #[test]
    fn prefix_matching_is_segment_aware() {
        let mut t = TraceTree::new();
        t.insert("rack1/gpu0", constant_trace(100.0, 1.0));
        t.insert("rack10/gpu0", constant_trace(100.0, 1.0));
        // "rack1" must not match "rack10".
        assert!((t.subtree_energy("rack1").as_watt_hours() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn subtree_trace_sums_power_pointwise() {
        let t = tree();
        let rack = t.subtree_trace("c0/r0");
        let mid = rack.power_at(TimeSpan::from_minutes(30.0)).unwrap();
        assert!((mid.as_watts() - 850.0).abs() < 1e-6);
        assert!((t.subtree_peak("c0/r0").as_watts() - 850.0).abs() < 1e-6);
    }

    #[test]
    fn children_energy_gives_the_rack_view() {
        let t = tree();
        let by_rack = t.children_energy("c0");
        assert_eq!(by_rack.len(), 2);
        assert!((by_rack["r0"].as_watt_hours() - 850.0).abs() < 1e-6);
        assert!((by_rack["r1"].as_watt_hours() - 400.0).abs() < 1e-6);
        let by_cluster = t.children_energy("");
        assert_eq!(by_cluster.len(), 2);
    }

    #[test]
    fn empty_subtree_is_zero() {
        let t = tree();
        assert!(t.subtree_energy("does-not-exist").is_zero());
        assert!(t.subtree_trace("does-not-exist").is_empty());
    }

    #[test]
    fn leaf_access_and_len() {
        let t = tree();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert!(t.leaf("c0/r0/h0/gpu0").is_some());
        assert!(
            t.leaf("c0/r0/h0").is_none(),
            "interior nodes are not leaves"
        );
    }

    #[test]
    fn collects_from_iterator() {
        let t: TraceTree = vec![
            ("a/b".to_owned(), constant_trace(1.0, 1.0)),
            ("a/c".to_owned(), constant_trace(2.0, 1.0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 2);
        assert!((t.subtree_energy("a").as_watt_hours() - 3.0).abs() < 1e-9);
    }
}
