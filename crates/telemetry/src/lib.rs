//! # sustain-telemetry
//!
//! A simulated power/energy telemetry substrate.
//!
//! The paper's measurements come from fleet-wide power telemetry that is
//! proprietary to Facebook. This crate rebuilds the *shape* of that substrate
//! so every accounting code path in the workspace can be exercised end-to-end:
//!
//! * [`device`] — parametric device power models (GPUs, CPUs, DRAM, edge
//!   devices, routers) mapping utilization to power draw.
//! * [`meter`] — power sampling and trapezoidal energy integration.
//! * [`counters`] — RAPL-like CPU/DRAM energy counters and NVML-like GPU
//!   counters, simulated over device models with measurement noise.
//! * [`trace`] — recorded power traces: resampling, merging, energy integrals.
//! * [`tracker`] — a CodeCarbon-style job tracker that turns meter readings
//!   into [`FootprintReport`](sustain_core::footprint::FootprintReport)s.
//! * [`faults`] — reproducible fault injection (dropout, counter wraparound,
//!   read timeouts, stuck counters, clock skew, noise bursts) and the
//!   degradation-tolerant reading path that survives it.
//!
//! ## Example
//!
//! ```rust
//! use sustain_telemetry::device::{DeviceSpec, PowerModel};
//! use sustain_core::units::Fraction;
//!
//! let v100 = DeviceSpec::V100.power_model();
//! let idle = v100.power(Fraction::ZERO);
//! let busy = v100.power(Fraction::ONE);
//! assert!(busy > idle);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod constants;
pub mod counters;
pub mod device;
pub mod estimation;
pub mod faults;
pub mod hierarchy;
pub mod meter;
pub mod trace;
pub mod tracker;

pub use device::{DeviceSpec, LinearPowerModel, PowerModel};
pub use faults::{FaultInjector, FaultPlan, ImputationPolicy};
pub use meter::{EnergyIntegrator, FaultTolerantIntegrator};
pub use trace::PowerTrace;
pub use tracker::CarbonTracker;
