//! Power sampling and energy integration.
//!
//! [`EnergyIntegrator`] accumulates `(time, power)` samples and integrates
//! them trapezoidally into an energy total — the core of every software power
//! meter (RAPL readers, NVML pollers, CodeCarbon). [`FaultTolerantIntegrator`]
//! is its degradation-tolerant sibling: it survives lost samples and ragged
//! timestamps, splits its total into measured vs imputed energy, and reports
//! the split as a [`DataQualityReport`]. [`sample_profile`] drives a
//! `PowerModel` over a utilization signal to produce a `PowerTrace`.

use sustain_core::quality::{DataQualityReport, FaultCounts, FaultKind};
use sustain_core::units::{Energy, Fraction, Power, TimeSpan};
use sustain_obs::Obs;

use crate::device::PowerModel;
use crate::faults::ImputationPolicy;
use crate::trace::PowerTrace;

/// Incremental trapezoidal integration of power samples into energy.
///
/// ```rust
/// use sustain_telemetry::meter::EnergyIntegrator;
/// use sustain_core::units::{Power, TimeSpan};
///
/// let mut meter = EnergyIntegrator::new();
/// meter.push(TimeSpan::from_secs(0.0), Power::from_watts(100.0));
/// meter.push(TimeSpan::from_secs(10.0), Power::from_watts(200.0));
/// // Trapezoid: mean 150 W over 10 s = 1500 J.
/// assert!((meter.energy().as_joules() - 1500.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyIntegrator {
    first_time: Option<TimeSpan>,
    last: Option<(TimeSpan, Power)>,
    energy: Energy,
    samples: usize,
    rejected: u64,
}

impl EnergyIntegrator {
    /// Creates an empty integrator.
    pub fn new() -> EnergyIntegrator {
        EnergyIntegrator::default()
    }

    /// Pushes a `(timestamp, power)` sample.
    ///
    /// Samples must arrive in non-decreasing time order; an out-of-order
    /// sample is ignored, tallied in [`EnergyIntegrator::rejected`], and the
    /// method returns `false`.
    pub fn push(&mut self, at: TimeSpan, power: Power) -> bool {
        if let Some((t0, p0)) = self.last {
            if at < t0 {
                self.rejected += 1;
                return false;
            }
            let dt = at - t0;
            self.energy += (p0 + power) * 0.5 * dt;
        } else {
            self.first_time = Some(at);
        }
        self.last = Some((at, power));
        self.samples += 1;
        true
    }

    /// Pushes a whole batch of samples, returning how many were accepted.
    ///
    /// Byte-identical to calling [`EnergyIntegrator::push`] per element —
    /// the trapezoid terms accumulate in the same order with the same
    /// intermediate expressions — but contiguous in-order runs are integrated
    /// by a tight loop that hoists the ordering check to one scan per run.
    pub fn push_batch(&mut self, samples: &[(TimeSpan, Power)]) -> usize {
        let mut accepted = 0;
        let mut i = 0;
        while i < samples.len() {
            let Some((t0, p0)) = self.last else {
                // First-ever sample: seed via the scalar path.
                accepted += usize::from(self.push(samples[i].0, samples[i].1));
                i += 1;
                continue;
            };
            // Maximal in-order run starting at i, relative to the running
            // last-accepted timestamp.
            let mut j = i;
            let mut prev = t0;
            while j < samples.len() && samples[j].0 >= prev {
                prev = samples[j].0;
                j += 1;
            }
            if j == i {
                self.rejected += 1;
                i += 1;
                continue;
            }
            let (mut lt, mut lp) = (t0, p0);
            for &(at, p) in &samples[i..j] {
                self.energy += (lp + p) * 0.5 * (at - lt);
                lt = at;
                lp = p;
            }
            self.last = Some((lt, lp));
            self.samples += j - i;
            accepted += j - i;
            i = j;
        }
        accepted
    }

    /// Total integrated energy so far.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// Number of samples pushed.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of out-of-order samples rejected (and therefore *not* part of
    /// [`EnergyIntegrator::samples`] or the energy total). A non-zero tally
    /// means upstream ordering was violated — callers that previously
    /// dropped the `false` return on the floor can audit it here.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Width of the sampled window (zero if fewer than 2 samples).
    pub fn window(&self) -> TimeSpan {
        match (self.first_time, self.last) {
            (Some(t0), Some((t1, _))) => t1 - t0,
            _ => TimeSpan::ZERO,
        }
    }

    /// Mean power over the sampled window (zero if the window is empty).
    pub fn mean_power(&self) -> Power {
        let w = self.window();
        if w.as_secs() > 0.0 {
            self.energy / w
        } else {
            Power::ZERO
        }
    }
}

/// A degradation-tolerant energy integrator.
///
/// Where [`EnergyIntegrator`] assumes a perfect sample stream, this one is
/// built for the stream a [`crate::faults::FaultInjector`] (or a real broken
/// collector) produces: samples may be missing (`None`), timestamps may
/// jitter off the nominal grid, and gaps longer than
/// [`crate::constants::GAP_DETECTION_FACTOR`] × the nominal interval are
/// bridged by an [`ImputationPolicy`] instead of being silently integrated as
/// if measured. The measured/imputed split is preserved and exposed as a
/// [`DataQualityReport`].
///
/// ```rust
/// use sustain_telemetry::faults::ImputationPolicy;
/// use sustain_telemetry::meter::FaultTolerantIntegrator;
/// use sustain_core::units::{Power, TimeSpan};
///
/// let mut m = FaultTolerantIntegrator::new(
///     TimeSpan::from_secs(1.0),
///     ImputationPolicy::LastObservation,
/// );
/// m.push(TimeSpan::from_secs(0.0), Some(Power::from_watts(100.0)));
/// m.push(TimeSpan::from_secs(1.0), None); // lost sample
/// m.push(TimeSpan::from_secs(2.0), Some(Power::from_watts(100.0)));
/// let q = m.report();
/// assert!(q.coverage().value() < 1.0);
/// // The 0→2 s bridge spans the lost tick, so its 200 J are charged to
/// // imputation, not measurement.
/// assert!((q.accounted_energy().as_joules() - 200.0).abs() < 1e-9);
/// assert!((q.imputed_energy.as_joules() - 200.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultTolerantIntegrator {
    interval: TimeSpan,
    policy: ImputationPolicy,
    last: Option<(TimeSpan, Power)>,
    expected: u64,
    observed: u64,
    measured: Energy,
    imputed: Energy,
    faults: FaultCounts,
}

impl FaultTolerantIntegrator {
    /// Creates an integrator expecting samples every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is non-positive.
    pub fn new(interval: TimeSpan, policy: ImputationPolicy) -> FaultTolerantIntegrator {
        assert!(
            interval.as_secs() > 0.0,
            "sampling interval must be positive"
        );
        FaultTolerantIntegrator {
            interval,
            policy,
            last: None,
            expected: 0,
            observed: 0,
            measured: Energy::ZERO,
            imputed: Energy::ZERO,
            faults: FaultCounts::default(),
        }
    }

    /// The imputation policy in force.
    pub fn policy(&self) -> ImputationPolicy {
        self.policy
    }

    /// Pushes one sampling tick: `Some(power)` for an observed reading,
    /// `None` for a lost one (dropout / read timeout). Out-of-order observed
    /// samples are rejected (the method returns `false`) and tallied as
    /// [`FaultKind::OutOfOrder`] in the report, so rejected data is never
    /// silently absent from the accounting; every call still counts one
    /// expected tick.
    pub fn push(&mut self, at: TimeSpan, sample: Option<Power>) -> bool {
        self.push_inner(at, sample, None)
    }

    /// [`FaultTolerantIntegrator::push`] with observability: every gap the
    /// integrator decides to bridge emits a structured `meter.imputed_gap`
    /// event (gap width, imputed energy, policy) and bumps a counter through
    /// `obs`. The integrator stays `Copy`, so the handle is borrowed per call
    /// rather than stored.
    pub fn push_traced(&mut self, at: TimeSpan, sample: Option<Power>, obs: &Obs) -> bool {
        self.push_inner(at, sample, Some(obs))
    }

    /// Pushes a whole batch of sampling ticks, returning how many observed
    /// samples were accepted (lost ticks count as handled but not accepted,
    /// mirroring [`FaultTolerantIntegrator::push`]'s `true` on `None`).
    ///
    /// The batch is split into maximal *clean runs* — consecutive observed
    /// samples whose timestamps are in order and whose spacing stays within
    /// the gap limit — and each run is integrated by a tight trapezoid loop
    /// with no fault/imputation branching. Every boundary sample (lost tick,
    /// out-of-order timestamp, or gap) falls back to the scalar path, so
    /// fault tallies, imputation, and the measured/imputed split are
    /// byte-identical to pushing the same ticks one at a time.
    pub fn push_batch(&mut self, samples: &[(TimeSpan, Option<Power>)]) -> usize {
        self.push_batch_inner(samples, None)
    }

    /// [`FaultTolerantIntegrator::push_batch`] with observability: boundary
    /// samples route through the traced scalar path, so gap/rejection events
    /// and counters fire exactly as they would per sample. Clean runs emit
    /// nothing — there is nothing fault-shaped to report.
    pub fn push_batch_traced(&mut self, samples: &[(TimeSpan, Option<Power>)], obs: &Obs) -> usize {
        self.push_batch_inner(samples, Some(obs))
    }

    /// [`FaultTolerantIntegrator::push_batch`] for a batch of observed
    /// readings only — the columnar fast path for callers (e.g. the stream
    /// pipeline's per-sink flush batches) whose batches carry no lost-tick
    /// tombstones, so every entry is a plain 16-byte `(time, power)` pair
    /// with no `Option` discriminant to load or test per sample. Tallies,
    /// imputation, and float results are bitwise identical to pushing each
    /// sample as `(at, Some(power))` in order.
    pub fn push_batch_observed(&mut self, samples: &[(TimeSpan, Power)]) -> usize {
        let gap_limit = self.interval * crate::constants::GAP_DETECTION_FACTOR;
        let mut accepted = 0;
        let mut i = 0;
        while i < samples.len() {
            let Some((t0, p0)) = self.last else {
                let (at, power) = samples[i];
                accepted += usize::from(self.push_inner(at, Some(power), None));
                i += 1;
                continue;
            };
            // Maximal clean run starting at i: in-order and within the gap
            // limit of the running previous timestamp.
            let mut j = i;
            let mut prev = t0;
            while j < samples.len() {
                let (at, _) = samples[j];
                if at >= prev && at - prev <= gap_limit {
                    prev = at;
                    j += 1;
                } else {
                    break;
                }
            }
            if j == i {
                // Boundary: out-of-order or gap — scalar path keeps
                // tallies and imputation identical.
                let (at, power) = samples[i];
                accepted += usize::from(self.push_inner(at, Some(power), None));
                i += 1;
                continue;
            }
            // Same clean-run kernel as `push_batch`: per-sample order and
            // expression shape, so float results are bitwise identical.
            let (mut lt, mut lp) = (t0, p0);
            for &(at, p) in &samples[i..j] {
                self.measured += (lp + p) * 0.5 * (at - lt);
                lt = at;
                lp = p;
            }
            let n = (j - i) as u64;
            self.expected += n;
            self.observed += n;
            self.last = Some((lt, lp));
            accepted += j - i;
            i = j;
        }
        accepted
    }

    fn push_batch_inner(
        &mut self,
        samples: &[(TimeSpan, Option<Power>)],
        obs: Option<&Obs>,
    ) -> usize {
        let gap_limit = self.interval * crate::constants::GAP_DETECTION_FACTOR;
        let mut accepted = 0;
        let mut i = 0;
        while i < samples.len() {
            let Some((t0, p0)) = self.last else {
                // No prior sample: the first push seeds `last` and integrates
                // nothing, so run it through the scalar path.
                let (at, sample) = samples[i];
                let ok = self.push_inner(at, sample, obs);
                accepted += usize::from(ok && sample.is_some());
                i += 1;
                continue;
            };
            // Maximal clean run starting at i: observed, in-order, within
            // the gap limit of the running previous timestamp.
            let mut j = i;
            let mut prev = t0;
            while j < samples.len() {
                match samples[j] {
                    (at, Some(_)) if at >= prev && at - prev <= gap_limit => {
                        prev = at;
                        j += 1;
                    }
                    _ => break,
                }
            }
            if j == i {
                // Boundary: lost tick, out-of-order, or gap — scalar path
                // keeps tallies, imputation, and obs events identical.
                let (at, sample) = samples[i];
                let ok = self.push_inner(at, sample, obs);
                accepted += usize::from(ok && sample.is_some());
                i += 1;
                continue;
            }
            // Clean-run kernel: pure trapezoid accumulation in per-sample
            // order (same expression shape as `push_inner`, so the float
            // results are bitwise identical), with the per-sample counter
            // updates collapsed into one batched update.
            let (mut lt, mut lp) = (t0, p0);
            for &(at, sample) in &samples[i..j] {
                let p = sample.unwrap_or(lp); // run is all-observed by construction
                self.measured += (lp + p) * 0.5 * (at - lt);
                lt = at;
                lp = p;
            }
            let n = (j - i) as u64;
            self.expected += n;
            self.observed += n;
            self.last = Some((lt, lp));
            accepted += j - i;
            i = j;
        }
        accepted
    }

    /// The most recently accepted `(timestamp, power)` sample, if any —
    /// the reference point the next push's ordering/gap checks run against.
    pub fn last_sample(&self) -> Option<(TimeSpan, Power)> {
        self.last
    }

    fn push_inner(&mut self, at: TimeSpan, sample: Option<Power>, obs: Option<&Obs>) -> bool {
        self.expected += 1;
        let Some(power) = sample else {
            return true;
        };
        if let Some((t0, p0)) = self.last {
            if at < t0 {
                // An observed sample we cannot integrate: tally it so the
                // report's coverage stops silently overstating measured data.
                self.faults.record(FaultKind::OutOfOrder);
                if let Some(obs) = obs.filter(|o| o.enabled()) {
                    obs.event(
                        "meter.rejected_sample",
                        &[
                            ("at_s", at.as_secs().into()),
                            ("last_s", t0.as_secs().into()),
                        ],
                    );
                    obs.counter("meter_rejected_samples_total").inc();
                }
                return false;
            }
            let dt = at - t0;
            let gap_limit = self.interval * crate::constants::GAP_DETECTION_FACTOR;
            let segment = (p0 + power) * 0.5 * dt;
            if dt > gap_limit {
                // Missing samples in between: charge the bridge to imputation.
                let (bridged, policy_label) = match self.policy {
                    ImputationPolicy::Linear => (segment, "linear"),
                    ImputationPolicy::LastObservation => (p0 * dt, "last_observation"),
                    ImputationPolicy::ModelBased { assumed } => (assumed * dt, "model_based"),
                };
                self.imputed += bridged;
                if let Some(obs) = obs.filter(|o| o.enabled()) {
                    obs.event(
                        "meter.imputed_gap",
                        &[
                            ("gap_s", dt.as_secs().into()),
                            ("imputed_j", bridged.as_joules().into()),
                            ("policy", policy_label.into()),
                        ],
                    );
                    obs.counter("meter_imputed_gaps_total").inc();
                    obs.counter("meter_imputed_energy_joules_total")
                        .add(bridged.as_joules());
                }
            } else {
                self.measured += segment;
            }
        }
        self.last = Some((at, power));
        self.observed += 1;
        true
    }

    /// Folds an injector's (or any upstream source's) fault tallies into the
    /// report this integrator will emit.
    pub fn merge_faults(&mut self, faults: &FaultCounts) {
        self.faults.merge(faults);
    }

    /// Energy integrated from contiguous observed samples.
    pub fn measured_energy(&self) -> Energy {
        self.measured
    }

    /// Energy bridged across gaps by the imputation policy.
    pub fn imputed_energy(&self) -> Energy {
        self.imputed
    }

    /// Total accounted energy: measured plus imputed.
    pub fn energy(&self) -> Energy {
        self.measured + self.imputed
    }

    /// The data-quality accounting for everything pushed so far.
    pub fn report(&self) -> DataQualityReport {
        DataQualityReport {
            expected_samples: self.expected,
            observed_samples: self.observed,
            measured_energy: self.measured,
            imputed_energy: self.imputed,
            faults: self.faults,
        }
    }
}

/// Samples a device's power over a utilization signal `u(t)` at a fixed
/// interval, returning the recorded trace.
///
/// The signal is evaluated at `t = 0, dt, 2·dt, …, duration` inclusive, so the
/// trace always covers the full window.
///
/// ```rust
/// use sustain_telemetry::device::DeviceSpec;
/// use sustain_telemetry::meter::sample_profile;
/// use sustain_core::units::{Fraction, TimeSpan};
///
/// let trace = sample_profile(
///     &DeviceSpec::V100.power_model(),
///     |_t| Fraction::new(0.5).unwrap(),
///     TimeSpan::from_secs(60.0),
///     TimeSpan::from_secs(1.0),
/// );
/// assert_eq!(trace.len(), 61);
/// ```
///
/// # Panics
///
/// Panics if `interval` or `duration` is non-positive.
pub fn sample_profile<M, F>(
    model: &M,
    mut utilization: F,
    duration: TimeSpan,
    interval: TimeSpan,
) -> PowerTrace
where
    M: PowerModel + ?Sized,
    F: FnMut(TimeSpan) -> Fraction,
{
    assert!(
        interval.as_secs() > 0.0,
        "sampling interval must be positive"
    );
    assert!(duration.as_secs() > 0.0, "duration must be positive");
    let mut trace = PowerTrace::new();
    let mut t = TimeSpan::ZERO;
    while t < duration {
        trace.push(t, model.power(utilization(t)));
        t += interval;
    }
    trace.push(duration, model.power(utilization(duration)));
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceSpec, LinearPowerModel};

    #[test]
    fn constant_power_integrates_exactly() {
        let mut m = EnergyIntegrator::new();
        for i in 0..=10 {
            m.push(TimeSpan::from_secs(i as f64), Power::from_watts(50.0));
        }
        assert!((m.energy().as_joules() - 500.0).abs() < 1e-9);
        assert!((m.mean_power().as_watts() - 50.0).abs() < 1e-9);
        assert_eq!(m.samples(), 11);
        assert!((m.window().as_secs() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_matches_linear_ramp() {
        // Power ramps 0→100 W over 10 s: energy = 500 J regardless of step.
        let mut coarse = EnergyIntegrator::new();
        let mut fine = EnergyIntegrator::new();
        for i in 0..=10 {
            let t = i as f64;
            coarse.push(TimeSpan::from_secs(t), Power::from_watts(10.0 * t));
        }
        for i in 0..=1000 {
            let t = i as f64 / 100.0;
            fine.push(TimeSpan::from_secs(t), Power::from_watts(10.0 * t));
        }
        assert!((coarse.energy().as_joules() - 500.0).abs() < 1e-9);
        assert!((fine.energy().as_joules() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_samples_rejected() {
        let mut m = EnergyIntegrator::new();
        assert!(m.push(TimeSpan::from_secs(5.0), Power::from_watts(1.0)));
        assert!(!m.push(TimeSpan::from_secs(4.0), Power::from_watts(1.0)));
        assert_eq!(m.samples(), 1);
        assert_eq!(m.rejected(), 1);
    }

    #[test]
    fn empty_integrator_is_zero() {
        let m = EnergyIntegrator::new();
        assert!(m.energy().is_zero());
        assert_eq!(m.mean_power(), Power::ZERO);
        assert_eq!(m.window(), TimeSpan::ZERO);
    }

    #[test]
    fn single_sample_has_no_energy() {
        let mut m = EnergyIntegrator::new();
        m.push(TimeSpan::ZERO, Power::from_watts(100.0));
        assert!(m.energy().is_zero());
        assert_eq!(m.mean_power(), Power::ZERO);
    }

    #[test]
    fn profile_sampling_covers_window() {
        let model = DeviceSpec::A100.power_model();
        let trace = sample_profile(
            &model,
            |_| Fraction::new(1.0).unwrap(),
            TimeSpan::from_secs(10.0),
            TimeSpan::from_secs(3.0),
        );
        // Samples at 0, 3, 6, 9, 10.
        assert_eq!(trace.len(), 5);
        assert!((trace.duration().as_secs() - 10.0).abs() < 1e-12);
        // Constant full power: energy = 400 W × 10 s.
        assert!((trace.energy().as_joules() - 4000.0).abs() < 1e-6);
    }

    #[test]
    fn profile_with_varying_utilization() {
        let model = LinearPowerModel::new(Power::ZERO, Power::from_watts(100.0));
        // Utilization alternates 0 and 1 per second; mean power ≈ 50 W.
        let trace = sample_profile(
            &model,
            |t| {
                if (t.as_secs() as u64).is_multiple_of(2) {
                    Fraction::ZERO
                } else {
                    Fraction::ONE
                }
            },
            TimeSpan::from_secs(1000.0),
            TimeSpan::from_secs(0.5),
        );
        let mean = trace.mean_power().as_watts();
        assert!((mean - 50.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn profile_rejects_zero_interval() {
        let model = DeviceSpec::V100.power_model();
        let _ = sample_profile(
            &model,
            |_| Fraction::ZERO,
            TimeSpan::from_secs(1.0),
            TimeSpan::ZERO,
        );
    }

    fn ft(policy: ImputationPolicy) -> FaultTolerantIntegrator {
        FaultTolerantIntegrator::new(TimeSpan::from_secs(1.0), policy)
    }

    #[test]
    fn fault_tolerant_matches_plain_on_clean_stream() {
        let mut plain = EnergyIntegrator::new();
        let mut tolerant = ft(ImputationPolicy::Linear);
        for i in 0..=20 {
            let t = TimeSpan::from_secs(i as f64);
            let p = Power::from_watts(100.0 + 5.0 * i as f64);
            plain.push(t, p);
            tolerant.push(t, Some(p));
        }
        assert_eq!(tolerant.measured_energy(), plain.energy());
        assert!(tolerant.imputed_energy().is_zero());
        let q = tolerant.report();
        assert!(q.is_pristine());
        assert_eq!(q.coverage(), Fraction::ONE);
    }

    #[test]
    fn linear_imputation_bridges_a_gap_exactly() {
        // Constant 100 W with ticks 3..7 lost: linear bridge loses nothing.
        let mut m = ft(ImputationPolicy::Linear);
        for i in 0..=10 {
            let t = TimeSpan::from_secs(i as f64);
            let lost = (3..=6).contains(&i);
            m.push(t, (!lost).then_some(Power::from_watts(100.0)));
        }
        assert!((m.energy().as_joules() - 1000.0).abs() < 1e-9);
        // The 2→7 s bridge (500 J) is imputed; the rest is measured.
        assert!((m.imputed_energy().as_joules() - 500.0).abs() < 1e-9);
        assert!((m.measured_energy().as_joules() - 500.0).abs() < 1e-9);
        let q = m.report();
        assert_eq!(q.expected_samples, 11);
        assert_eq!(q.observed_samples, 7);
        assert!(q.coverage().value() < 1.0);
    }

    #[test]
    fn last_observation_holds_flat_across_gap() {
        // 100 W before the gap, 300 W after: LOCF charges the gap at 100 W.
        let mut m = ft(ImputationPolicy::LastObservation);
        m.push(TimeSpan::from_secs(0.0), Some(Power::from_watts(100.0)));
        m.push(TimeSpan::from_secs(1.0), Some(Power::from_watts(100.0)));
        m.push(TimeSpan::from_secs(2.0), None);
        m.push(TimeSpan::from_secs(3.0), None);
        m.push(TimeSpan::from_secs(4.0), Some(Power::from_watts(300.0)));
        // Measured 0→1 s at 100 W = 100 J; imputed 1→4 s at 100 W = 300 J.
        assert!((m.measured_energy().as_joules() - 100.0).abs() < 1e-9);
        assert!((m.imputed_energy().as_joules() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn model_based_imputation_charges_assumed_power() {
        let mut m = ft(ImputationPolicy::ModelBased {
            assumed: Power::from_watts(250.0),
        });
        m.push(TimeSpan::from_secs(0.0), Some(Power::from_watts(100.0)));
        m.push(TimeSpan::from_secs(1.0), None);
        m.push(TimeSpan::from_secs(2.0), Some(Power::from_watts(100.0)));
        // The 0→2 s gap is charged at the assumed 250 W.
        assert!((m.imputed_energy().as_joules() - 500.0).abs() < 1e-9);
        assert!(m.measured_energy().is_zero());
    }

    #[test]
    fn jittered_timestamps_within_gap_limit_stay_measured() {
        let mut m = ft(ImputationPolicy::Linear);
        // Ticks at 0, 1.2, 2.1, 3.4 s — ragged but every dt ≤ 1.5 s.
        for t in [0.0, 1.2, 2.1, 3.4] {
            m.push(TimeSpan::from_secs(t), Some(Power::from_watts(100.0)));
        }
        assert!(m.imputed_energy().is_zero());
        assert!((m.measured_energy().as_joules() - 340.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_observed_sample_is_ignored_but_tallied() {
        let mut m = ft(ImputationPolicy::Linear);
        assert!(m.push(TimeSpan::from_secs(5.0), Some(Power::from_watts(1.0))));
        assert!(!m.push(TimeSpan::from_secs(4.0), Some(Power::from_watts(1.0))));
        let q = m.report();
        assert_eq!(q.expected_samples, 2);
        assert_eq!(q.observed_samples, 1);
        // The rejection is visible in the report, not dropped on the floor.
        assert_eq!(q.faults.out_of_order, 1);
        assert!(!q.is_pristine());
    }

    #[test]
    fn rejected_sample_emits_obs_event_on_traced_path() {
        use sustain_obs::ObsConfig;
        let obs = ObsConfig::enabled().build();
        let mut m = ft(ImputationPolicy::Linear);
        assert!(m.push_traced(TimeSpan::from_secs(5.0), Some(Power::from_watts(1.0)), &obs));
        assert!(!m.push_traced(TimeSpan::from_secs(4.0), Some(Power::from_watts(1.0)), &obs));
        assert!((obs.counter("meter_rejected_samples_total").value() - 1.0).abs() < 1e-12);
        let events = obs.events();
        assert!(events.iter().any(|e| matches!(
            e,
            sustain_obs::EventRecord::Instant { name, .. } if *name == "meter.rejected_sample"
        )));
    }

    /// A tick stream exercising every boundary kind: lost ticks, gaps,
    /// out-of-order timestamps, jitter, and long clean stretches.
    fn adversarial_ticks() -> Vec<(TimeSpan, Option<Power>)> {
        let mut ticks = Vec::new();
        let mut t = 0.0;
        for i in 0..200u64 {
            let power = Power::from_watts(100.0 + (i % 13) as f64 * 7.0);
            // Lost ticks at phases 3 and 9; phase 5 is followed by a gap.
            let sample = (!matches!(i % 17, 3 | 9)).then_some(power);
            ticks.push((TimeSpan::from_secs(t), sample));
            t += match i % 17 {
                5 => 4.0,  // gap beyond the detection limit
                11 => 0.3, // jitter
                _ => 1.0,
            };
            if i % 23 == 7 {
                // Out-of-order straggler.
                ticks.push((TimeSpan::from_secs(t - 2.5), Some(power)));
            }
        }
        ticks
    }

    #[test]
    fn batch_is_byte_identical_to_per_sample_for_any_split() {
        let ticks = adversarial_ticks();
        let mut reference = ft(ImputationPolicy::Linear);
        let mut accepted_ref = 0;
        for &(at, s) in &ticks {
            if reference.push(at, s) && s.is_some() {
                accepted_ref += 1;
            }
        }
        // Whole-slice batch, plus every chunk size from degenerate to large:
        // run boundaries must be invariant to how the stream is batched.
        for chunk in [1, 2, 3, 7, 64, ticks.len()] {
            let mut batched = ft(ImputationPolicy::Linear);
            let mut accepted = 0;
            for part in ticks.chunks(chunk) {
                accepted += batched.push_batch(part);
            }
            assert_eq!(batched, reference, "chunk size {chunk}");
            assert_eq!(accepted, accepted_ref, "chunk size {chunk}");
            assert_eq!(
                batched.energy().as_joules().to_bits(),
                reference.energy().as_joules().to_bits(),
                "chunk size {chunk}: energy must match bitwise"
            );
        }
        let q = reference.report();
        assert!(q.faults.out_of_order > 0, "stream must exercise rejections");
        assert!(q.imputed_energy > Energy::ZERO, "stream must exercise gaps");
        assert!(q.observed_samples < q.expected_samples);
    }

    #[test]
    fn batch_is_byte_identical_across_policies() {
        let ticks = adversarial_ticks();
        for policy in [
            ImputationPolicy::Linear,
            ImputationPolicy::LastObservation,
            ImputationPolicy::ModelBased {
                assumed: Power::from_watts(180.0),
            },
        ] {
            let mut reference = ft(policy);
            let mut batched = ft(policy);
            for &(at, s) in &ticks {
                reference.push(at, s);
            }
            for part in ticks.chunks(5) {
                batched.push_batch(part);
            }
            assert_eq!(batched, reference, "{policy:?}");
        }
    }

    #[test]
    fn plain_push_batch_matches_per_sample() {
        let samples: Vec<(TimeSpan, Power)> = (0..100)
            .map(|i| {
                let t = if i % 19 == 4 {
                    i as f64 - 3.0
                } else {
                    i as f64
                };
                (TimeSpan::from_secs(t), Power::from_watts(50.0 + i as f64))
            })
            .collect();
        let mut reference = EnergyIntegrator::new();
        for &(at, p) in &samples {
            reference.push(at, p);
        }
        for chunk in [1, 4, samples.len()] {
            let mut batched = EnergyIntegrator::new();
            let mut accepted = 0;
            for part in samples.chunks(chunk) {
                accepted += batched.push_batch(part);
            }
            assert_eq!(batched, reference, "chunk size {chunk}");
            assert_eq!(accepted, reference.samples(), "chunk size {chunk}");
        }
        assert!(reference.rejected() > 0, "stream must exercise rejections");
    }

    #[test]
    fn batch_traced_fires_boundary_obs_events() {
        use sustain_obs::ObsConfig;
        let obs = ObsConfig::enabled().build();
        let mut m = ft(ImputationPolicy::Linear);
        let ticks = [
            (TimeSpan::from_secs(0.0), Some(Power::from_watts(100.0))),
            (TimeSpan::from_secs(1.0), Some(Power::from_watts(100.0))),
            (TimeSpan::from_secs(6.0), Some(Power::from_watts(100.0))), // gap
            (TimeSpan::from_secs(2.0), Some(Power::from_watts(100.0))), // out of order
        ];
        m.push_batch_traced(&ticks, &obs);
        assert!((obs.counter("meter_imputed_gaps_total").value() - 1.0).abs() < 1e-12);
        assert!((obs.counter("meter_rejected_samples_total").value() - 1.0).abs() < 1e-12);
        assert_eq!(
            m.last_sample(),
            Some((TimeSpan::from_secs(6.0), Power::from_watts(100.0)))
        );
    }

    #[test]
    fn merged_faults_surface_in_report() {
        use sustain_core::quality::{FaultCounts, FaultKind};
        let mut m = ft(ImputationPolicy::Linear);
        let mut c = FaultCounts::default();
        c.record(FaultKind::Dropout);
        c.record(FaultKind::CounterWrap);
        m.merge_faults(&c);
        assert_eq!(m.report().faults.total(), 2);
    }
}
