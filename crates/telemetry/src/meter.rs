//! Power sampling and energy integration.
//!
//! [`EnergyIntegrator`] accumulates `(time, power)` samples and integrates
//! them trapezoidally into an energy total — the core of every software power
//! meter (RAPL readers, NVML pollers, CodeCarbon). [`sample_profile`] drives a
//! `PowerModel` over a utilization signal to
//! produce a `PowerTrace`.

use sustain_core::units::{Energy, Fraction, Power, TimeSpan};

use crate::device::PowerModel;
use crate::trace::PowerTrace;

/// Incremental trapezoidal integration of power samples into energy.
///
/// ```rust
/// use sustain_telemetry::meter::EnergyIntegrator;
/// use sustain_core::units::{Power, TimeSpan};
///
/// let mut meter = EnergyIntegrator::new();
/// meter.push(TimeSpan::from_secs(0.0), Power::from_watts(100.0));
/// meter.push(TimeSpan::from_secs(10.0), Power::from_watts(200.0));
/// // Trapezoid: mean 150 W over 10 s = 1500 J.
/// assert!((meter.energy().as_joules() - 1500.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyIntegrator {
    first_time: Option<TimeSpan>,
    last: Option<(TimeSpan, Power)>,
    energy: Energy,
    samples: usize,
}

impl EnergyIntegrator {
    /// Creates an empty integrator.
    pub fn new() -> EnergyIntegrator {
        EnergyIntegrator::default()
    }

    /// Pushes a `(timestamp, power)` sample.
    ///
    /// Samples must arrive in non-decreasing time order; an out-of-order
    /// sample is ignored and the method returns `false`.
    pub fn push(&mut self, at: TimeSpan, power: Power) -> bool {
        if let Some((t0, p0)) = self.last {
            if at < t0 {
                return false;
            }
            let dt = at - t0;
            self.energy += (p0 + power) * 0.5 * dt;
        } else {
            self.first_time = Some(at);
        }
        self.last = Some((at, power));
        self.samples += 1;
        true
    }

    /// Total integrated energy so far.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// Number of samples pushed.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Width of the sampled window (zero if fewer than 2 samples).
    pub fn window(&self) -> TimeSpan {
        match (self.first_time, self.last) {
            (Some(t0), Some((t1, _))) => t1 - t0,
            _ => TimeSpan::ZERO,
        }
    }

    /// Mean power over the sampled window (zero if the window is empty).
    pub fn mean_power(&self) -> Power {
        let w = self.window();
        if w.as_secs() > 0.0 {
            self.energy / w
        } else {
            Power::ZERO
        }
    }
}

/// Samples a device's power over a utilization signal `u(t)` at a fixed
/// interval, returning the recorded trace.
///
/// The signal is evaluated at `t = 0, dt, 2·dt, …, duration` inclusive, so the
/// trace always covers the full window.
///
/// ```rust
/// use sustain_telemetry::device::DeviceSpec;
/// use sustain_telemetry::meter::sample_profile;
/// use sustain_core::units::{Fraction, TimeSpan};
///
/// let trace = sample_profile(
///     &DeviceSpec::V100.power_model(),
///     |_t| Fraction::new(0.5).unwrap(),
///     TimeSpan::from_secs(60.0),
///     TimeSpan::from_secs(1.0),
/// );
/// assert_eq!(trace.len(), 61);
/// ```
///
/// # Panics
///
/// Panics if `interval` or `duration` is non-positive.
pub fn sample_profile<M, F>(
    model: &M,
    mut utilization: F,
    duration: TimeSpan,
    interval: TimeSpan,
) -> PowerTrace
where
    M: PowerModel + ?Sized,
    F: FnMut(TimeSpan) -> Fraction,
{
    assert!(
        interval.as_secs() > 0.0,
        "sampling interval must be positive"
    );
    assert!(duration.as_secs() > 0.0, "duration must be positive");
    let mut trace = PowerTrace::new();
    let mut t = TimeSpan::ZERO;
    while t < duration {
        trace.push(t, model.power(utilization(t)));
        t += interval;
    }
    trace.push(duration, model.power(utilization(duration)));
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceSpec, LinearPowerModel};

    #[test]
    fn constant_power_integrates_exactly() {
        let mut m = EnergyIntegrator::new();
        for i in 0..=10 {
            m.push(TimeSpan::from_secs(i as f64), Power::from_watts(50.0));
        }
        assert!((m.energy().as_joules() - 500.0).abs() < 1e-9);
        assert!((m.mean_power().as_watts() - 50.0).abs() < 1e-9);
        assert_eq!(m.samples(), 11);
        assert!((m.window().as_secs() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_matches_linear_ramp() {
        // Power ramps 0→100 W over 10 s: energy = 500 J regardless of step.
        let mut coarse = EnergyIntegrator::new();
        let mut fine = EnergyIntegrator::new();
        for i in 0..=10 {
            let t = i as f64;
            coarse.push(TimeSpan::from_secs(t), Power::from_watts(10.0 * t));
        }
        for i in 0..=1000 {
            let t = i as f64 / 100.0;
            fine.push(TimeSpan::from_secs(t), Power::from_watts(10.0 * t));
        }
        assert!((coarse.energy().as_joules() - 500.0).abs() < 1e-9);
        assert!((fine.energy().as_joules() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_samples_rejected() {
        let mut m = EnergyIntegrator::new();
        assert!(m.push(TimeSpan::from_secs(5.0), Power::from_watts(1.0)));
        assert!(!m.push(TimeSpan::from_secs(4.0), Power::from_watts(1.0)));
        assert_eq!(m.samples(), 1);
    }

    #[test]
    fn empty_integrator_is_zero() {
        let m = EnergyIntegrator::new();
        assert!(m.energy().is_zero());
        assert_eq!(m.mean_power(), Power::ZERO);
        assert_eq!(m.window(), TimeSpan::ZERO);
    }

    #[test]
    fn single_sample_has_no_energy() {
        let mut m = EnergyIntegrator::new();
        m.push(TimeSpan::ZERO, Power::from_watts(100.0));
        assert!(m.energy().is_zero());
        assert_eq!(m.mean_power(), Power::ZERO);
    }

    #[test]
    fn profile_sampling_covers_window() {
        let model = DeviceSpec::A100.power_model();
        let trace = sample_profile(
            &model,
            |_| Fraction::new(1.0).unwrap(),
            TimeSpan::from_secs(10.0),
            TimeSpan::from_secs(3.0),
        );
        // Samples at 0, 3, 6, 9, 10.
        assert_eq!(trace.len(), 5);
        assert!((trace.duration().as_secs() - 10.0).abs() < 1e-12);
        // Constant full power: energy = 400 W × 10 s.
        assert!((trace.energy().as_joules() - 4000.0).abs() < 1e-6);
    }

    #[test]
    fn profile_with_varying_utilization() {
        let model = LinearPowerModel::new(Power::ZERO, Power::from_watts(100.0));
        // Utilization alternates 0 and 1 per second; mean power ≈ 50 W.
        let trace = sample_profile(
            &model,
            |t| {
                if (t.as_secs() as u64).is_multiple_of(2) {
                    Fraction::ZERO
                } else {
                    Fraction::ONE
                }
            },
            TimeSpan::from_secs(1000.0),
            TimeSpan::from_secs(0.5),
        );
        let mean = trace.mean_power().as_watts();
        assert!((mean - 50.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn profile_rejects_zero_interval() {
        let model = DeviceSpec::V100.power_model();
        let _ = sample_profile(
            &model,
            |_| Fraction::ZERO,
            TimeSpan::from_secs(1.0),
            TimeSpan::ZERO,
        );
    }
}
