//! Recorded power traces.
//!
//! A [`PowerTrace`] is an ordered series of `(timestamp, power)` samples with
//! trapezoidal energy integration, resampling, and point-wise combination —
//! the exchange format between the telemetry layer and the fleet simulator.

use serde::{Deserialize, Serialize};

use sustain_core::units::{Energy, Power, TimeSpan};

use crate::faults::ImputationPolicy;

/// The result of [`PowerTrace::fill_gaps`]: the gap-filled trace plus an
/// accounting of how much energy the fill invented.
#[derive(Debug, Clone, PartialEq)]
pub struct GapFill {
    /// The trace with imputed samples inserted on the nominal grid.
    pub trace: PowerTrace,
    /// Energy contributed by imputed (gap-bridging) segments.
    pub imputed: Energy,
    /// Number of gaps that were bridged.
    pub gaps: usize,
}

/// An ordered series of `(timestamp, power)` samples.
///
/// ```rust
/// use sustain_telemetry::trace::PowerTrace;
/// use sustain_core::units::{Power, TimeSpan};
///
/// let mut trace = PowerTrace::new();
/// trace.push(TimeSpan::from_secs(0.0), Power::from_watts(100.0));
/// trace.push(TimeSpan::from_secs(60.0), Power::from_watts(100.0));
/// assert!((trace.energy().as_joules() - 6000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerTrace {
    samples: Vec<(TimeSpan, Power)>,
    /// Out-of-order pushes rejected since construction — kept on the trace
    /// so a collector that ignored `push`'s return value still cannot lose
    /// samples invisibly.
    rejected: u64,
}

impl PowerTrace {
    /// Creates an empty trace.
    pub fn new() -> PowerTrace {
        PowerTrace::default()
    }

    /// Appends a sample. Out-of-order timestamps are rejected (returns
    /// `false`) and tallied in [`PowerTrace::rejected`].
    pub fn push(&mut self, at: TimeSpan, power: Power) -> bool {
        if let Some(&(last, _)) = self.samples.last() {
            if at < last {
                self.rejected += 1;
                return false;
            }
        }
        self.samples.push((at, power));
        true
    }

    /// Number of out-of-order pushes rejected since construction.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples as a slice.
    pub fn samples(&self) -> &[(TimeSpan, Power)] {
        &self.samples
    }

    /// Iterates `(timestamp, power)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TimeSpan, Power)> + '_ {
        self.samples.iter().copied()
    }

    /// The time covered by the trace.
    pub fn duration(&self) -> TimeSpan {
        match (self.samples.first(), self.samples.last()) {
            (Some(&(a, _)), Some(&(b, _))) => b - a,
            _ => TimeSpan::ZERO,
        }
    }

    /// Trapezoidal energy integral over the trace.
    pub fn energy(&self) -> Energy {
        let mut total = Energy::ZERO;
        for w in self.samples.windows(2) {
            if let [(t0, p0), (t1, p1)] = *w {
                total += (p0 + p1) * 0.5 * (t1 - t0);
            }
        }
        total
    }

    /// Mean power over the covered window (zero for empty/instant traces).
    pub fn mean_power(&self) -> Power {
        let d = self.duration();
        if d.as_secs() > 0.0 {
            self.energy() / d
        } else {
            Power::ZERO
        }
    }

    /// Peak sampled power (zero for an empty trace).
    pub fn peak_power(&self) -> Power {
        self.samples
            .iter()
            .map(|&(_, p)| p)
            .fold(Power::ZERO, Power::max)
    }

    /// Power at time `t` by linear interpolation. Returns `None` outside the
    /// covered window or for an empty trace.
    pub fn power_at(&self, t: TimeSpan) -> Option<Power> {
        let first = self.samples.first()?.0;
        let last = self.samples.last()?.0;
        if t < first || t > last {
            return None;
        }
        let idx = self
            .samples
            .partition_point(|&(ts, _)| ts <= t)
            .saturating_sub(1);
        let (t0, p0) = self.samples[idx];
        if idx + 1 >= self.samples.len() || t == t0 {
            return Some(p0);
        }
        let (t1, p1) = self.samples[idx + 1];
        if t1 == t0 {
            return Some(p1);
        }
        let w = (t - t0) / (t1 - t0);
        Some(p0 + (p1 - p0) * w)
    }

    /// Resamples onto a regular grid of `interval` over the covered window.
    ///
    /// Returns an empty trace if the input has fewer than 2 samples.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is non-positive.
    pub fn resample(&self, interval: TimeSpan) -> PowerTrace {
        assert!(interval.as_secs() > 0.0, "interval must be positive");
        let mut out = PowerTrace::new();
        let (Some(&(start, _)), Some(&(end, _))) = (self.samples.first(), self.samples.last())
        else {
            return out;
        };
        if self.samples.len() < 2 {
            return out;
        }
        let mut t = start;
        while t < end {
            // lint:allow(panic-discipline) t lies in [start, end] by loop bound
            out.push(t, self.power_at(t).expect("t within window"));
            t += interval;
        }
        // lint:allow(panic-discipline) end is the last sample's timestamp
        out.push(end, self.power_at(end).expect("end within window"));
        out
    }

    /// Detects gaps — sample spacings longer than
    /// [`crate::constants::GAP_DETECTION_FACTOR`] × `interval` — and bridges
    /// them with samples imputed on the nominal grid, so a lossy trace can be
    /// fed to consumers that assume regular sampling. The returned [`GapFill`]
    /// separates the invented energy from the measured trace.
    ///
    /// ```rust
    /// use sustain_telemetry::faults::ImputationPolicy;
    /// use sustain_telemetry::trace::PowerTrace;
    /// use sustain_core::units::{Power, TimeSpan};
    ///
    /// let mut lossy = PowerTrace::new();
    /// lossy.push(TimeSpan::from_secs(0.0), Power::from_watts(100.0));
    /// lossy.push(TimeSpan::from_secs(5.0), Power::from_watts(100.0)); // 4 ticks lost
    /// let fill = lossy.fill_gaps(TimeSpan::from_secs(1.0), ImputationPolicy::LastObservation);
    /// assert_eq!(fill.gaps, 1);
    /// assert_eq!(fill.trace.len(), 6);
    /// assert!((fill.imputed.as_joules() - 500.0).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `interval` is non-positive.
    pub fn fill_gaps(&self, interval: TimeSpan, policy: ImputationPolicy) -> GapFill {
        assert!(interval.as_secs() > 0.0, "interval must be positive");
        let limit = interval * crate::constants::GAP_DETECTION_FACTOR;
        let mut trace = PowerTrace::new();
        let mut imputed = Energy::ZERO;
        let mut gaps = 0;
        if let Some(&first) = self.samples.first() {
            trace.push(first.0, first.1);
        }
        for w in self.samples.windows(2) {
            let [(t0, p0), (t1, p1)] = *w else {
                continue;
            };
            if t1 - t0 > limit {
                gaps += 1;
                // Insert grid points across the gap, then account the whole
                // bridged segment (t0 → t1) as imputed energy.
                let mut prev = (t0, p0);
                let mut t = t0 + interval;
                while t < t1 {
                    let p = match policy {
                        ImputationPolicy::Linear => {
                            let frac = (t - t0) / (t1 - t0);
                            p0 + (p1 - p0) * frac
                        }
                        ImputationPolicy::LastObservation => p0,
                        ImputationPolicy::ModelBased { assumed } => assumed,
                    };
                    trace.push(t, p);
                    imputed += (prev.1 + p) * 0.5 * (t - prev.0);
                    prev = (t, p);
                    t += interval;
                }
                imputed += (prev.1 + p1) * 0.5 * (t1 - prev.0);
            }
            trace.push(t1, p1);
        }
        GapFill {
            trace,
            imputed,
            gaps,
        }
    }

    /// Point-wise sum of two traces on the union grid of their timestamps,
    /// treating power outside either trace's window as zero — how rack-level
    /// power is assembled from per-device traces.
    pub fn combine(&self, other: &PowerTrace) -> PowerTrace {
        let mut times: Vec<TimeSpan> = self
            .samples
            .iter()
            .chain(other.samples.iter())
            .map(|&(t, _)| t)
            .collect();
        times.sort_unstable();
        times.dedup();
        let mut out = PowerTrace::new();
        for t in times {
            let a = self.power_at(t).unwrap_or(Power::ZERO);
            let b = other.power_at(t).unwrap_or(Power::ZERO);
            out.push(t, a + b);
        }
        out
    }
}

impl FromIterator<(TimeSpan, Power)> for PowerTrace {
    fn from_iter<I: IntoIterator<Item = (TimeSpan, Power)>>(iter: I) -> PowerTrace {
        let mut t = PowerTrace::new();
        for (at, p) in iter {
            t.push(at, p);
        }
        t
    }
}

impl Extend<(TimeSpan, Power)> for PowerTrace {
    fn extend<I: IntoIterator<Item = (TimeSpan, Power)>>(&mut self, iter: I) {
        for (at, p) in iter {
            self.push(at, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> PowerTrace {
        // 0 W at t=0 to 100 W at t=10.
        vec![
            (TimeSpan::from_secs(0.0), Power::from_watts(0.0)),
            (TimeSpan::from_secs(10.0), Power::from_watts(100.0)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn energy_of_ramp() {
        assert!((ramp().energy().as_joules() - 500.0).abs() < 1e-9);
        assert!((ramp().mean_power().as_watts() - 50.0).abs() < 1e-9);
        assert_eq!(ramp().peak_power(), Power::from_watts(100.0));
    }

    #[test]
    fn empty_and_single_sample_traces() {
        let empty = PowerTrace::new();
        assert!(empty.is_empty());
        assert!(empty.energy().is_zero());
        assert_eq!(empty.mean_power(), Power::ZERO);
        assert_eq!(empty.power_at(TimeSpan::ZERO), None);

        let mut single = PowerTrace::new();
        single.push(TimeSpan::from_secs(1.0), Power::from_watts(5.0));
        assert!(single.energy().is_zero());
        assert_eq!(
            single.power_at(TimeSpan::from_secs(1.0)),
            Some(Power::from_watts(5.0))
        );
    }

    #[test]
    fn interpolation_inside_window() {
        let t = ramp();
        let p = t.power_at(TimeSpan::from_secs(2.5)).unwrap();
        assert!((p.as_watts() - 25.0).abs() < 1e-9);
        assert_eq!(t.power_at(TimeSpan::from_secs(-1.0)), None);
        assert_eq!(t.power_at(TimeSpan::from_secs(11.0)), None);
    }

    #[test]
    fn resample_preserves_energy_of_linear_trace() {
        let t = ramp();
        let r = t.resample(TimeSpan::from_secs(1.0));
        assert_eq!(r.len(), 11);
        assert!((r.energy().as_joules() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn resample_of_short_trace_is_empty() {
        let mut t = PowerTrace::new();
        t.push(TimeSpan::ZERO, Power::from_watts(1.0));
        assert!(t.resample(TimeSpan::from_secs(1.0)).is_empty());
    }

    #[test]
    fn combine_sums_overlapping_power() {
        let a = ramp();
        let b = ramp();
        let c = a.combine(&b);
        assert!((c.energy().as_joules() - 1000.0).abs() < 1e-9);
        let p = c.power_at(TimeSpan::from_secs(5.0)).unwrap();
        assert!((p.as_watts() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn combine_with_disjoint_windows() {
        let a = ramp();
        let b: PowerTrace = vec![
            (TimeSpan::from_secs(20.0), Power::from_watts(10.0)),
            (TimeSpan::from_secs(30.0), Power::from_watts(10.0)),
        ]
        .into_iter()
        .collect();
        let c = a.combine(&b);
        // Energy: both pieces present but gap (10→20 s) interpolates between
        // trace-a's end (treated 0 where absent) — combined grid has points at
        // 0,10,20,30; power at 10 is 100, at 20 is 10.
        assert_eq!(c.len(), 4);
        assert!(c.energy() > a.energy());
    }

    #[test]
    fn rejects_out_of_order_push() {
        let mut t = PowerTrace::new();
        assert!(t.push(TimeSpan::from_secs(5.0), Power::from_watts(1.0)));
        assert!(!t.push(TimeSpan::from_secs(1.0), Power::from_watts(1.0)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.rejected(), 1, "the rejection must be tallied");
    }

    #[test]
    fn serde_round_trip() {
        let t = ramp();
        let json = serde_json::to_string(&t).unwrap();
        let back: PowerTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn fill_gaps_on_gapless_trace_is_identity() {
        let t: PowerTrace = (0..=10)
            .map(|i| (TimeSpan::from_secs(i as f64), Power::from_watts(50.0)))
            .collect();
        let fill = t.fill_gaps(TimeSpan::from_secs(1.0), ImputationPolicy::Linear);
        assert_eq!(fill.trace, t);
        assert_eq!(fill.gaps, 0);
        assert!(fill.imputed.is_zero());
    }

    #[test]
    fn linear_fill_preserves_ramp_energy() {
        // A ramp with the middle missing: linear fill reconstructs it exactly.
        let lossy: PowerTrace = vec![
            (TimeSpan::from_secs(0.0), Power::from_watts(0.0)),
            (TimeSpan::from_secs(1.0), Power::from_watts(10.0)),
            (TimeSpan::from_secs(6.0), Power::from_watts(60.0)),
            (TimeSpan::from_secs(7.0), Power::from_watts(70.0)),
        ]
        .into_iter()
        .collect();
        let fill = lossy.fill_gaps(TimeSpan::from_secs(1.0), ImputationPolicy::Linear);
        assert_eq!(fill.gaps, 1);
        assert_eq!(fill.trace.len(), 8);
        let full_energy = 0.5 * 70.0 * 7.0; // ∫ 10t dt over 7 s
        assert!((fill.trace.energy().as_joules() - full_energy).abs() < 1e-9);
        // The bridged 1→6 s segment is flagged imputed: mean 35 W × 5 s.
        assert!((fill.imputed.as_joules() - 175.0).abs() < 1e-9);
    }

    #[test]
    fn model_based_fill_charges_assumed_power() {
        let lossy: PowerTrace = vec![
            (TimeSpan::from_secs(0.0), Power::from_watts(100.0)),
            (TimeSpan::from_secs(4.0), Power::from_watts(100.0)),
        ]
        .into_iter()
        .collect();
        let fill = lossy.fill_gaps(
            TimeSpan::from_secs(1.0),
            ImputationPolicy::ModelBased {
                assumed: Power::from_watts(200.0),
            },
        );
        // Grid points at 1,2,3 carry 200 W; edges blend with the 100 W
        // endpoints: 150 + 200 + 200 + 150 = 700 J across the bridge.
        assert!((fill.imputed.as_joules() - 700.0).abs() < 1e-9);
        assert_eq!(fill.trace.len(), 5);
    }

    #[test]
    fn duplicate_timestamps_allowed() {
        // Step change at the same instant (e.g. job start).
        let mut t = PowerTrace::new();
        t.push(TimeSpan::ZERO, Power::from_watts(0.0));
        t.push(TimeSpan::from_secs(5.0), Power::from_watts(0.0));
        t.push(TimeSpan::from_secs(5.0), Power::from_watts(100.0));
        t.push(TimeSpan::from_secs(10.0), Power::from_watts(100.0));
        assert!((t.energy().as_joules() - 500.0).abs() < 1e-9);
    }
}
