//! Recorded power traces.
//!
//! A [`PowerTrace`] is an ordered series of `(timestamp, power)` samples with
//! trapezoidal energy integration, resampling, and point-wise combination —
//! the exchange format between the telemetry layer and the fleet simulator.
//!
//! Storage is columnar (structure-of-arrays): timestamps and powers live in
//! two parallel `Vec`s so the batched integration kernel
//! ([`PowerTrace::push_batch`], [`crate::meter`]) can append whole validated
//! runs with two contiguous `extend`s and scan a single column without
//! striding over interleaved pairs. The public API still speaks
//! `(TimeSpan, Power)` pairs, and the serialized form is unchanged.

use serde::{Deserialize, Serialize};

use sustain_core::units::{Energy, Power, TimeSpan};

use crate::faults::ImputationPolicy;

/// The result of [`PowerTrace::fill_gaps`]: the gap-filled trace plus an
/// accounting of how much energy the fill invented.
#[derive(Debug, Clone, PartialEq)]
pub struct GapFill {
    /// The trace with imputed samples inserted on the nominal grid.
    pub trace: PowerTrace,
    /// Energy contributed by imputed (gap-bridging) segments.
    pub imputed: Energy,
    /// Number of gaps that were bridged.
    pub gaps: usize,
}

/// An ordered series of `(timestamp, power)` samples.
///
/// ```rust
/// use sustain_telemetry::trace::PowerTrace;
/// use sustain_core::units::{Power, TimeSpan};
///
/// let mut trace = PowerTrace::new();
/// trace.push(TimeSpan::from_secs(0.0), Power::from_watts(100.0));
/// trace.push(TimeSpan::from_secs(60.0), Power::from_watts(100.0));
/// assert!((trace.energy().as_joules() - 6000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerTrace {
    /// Sample timestamps, non-decreasing (column 1 of the SoA layout).
    times: Vec<TimeSpan>,
    /// Sample powers, index-aligned with `times` (column 2).
    powers: Vec<Power>,
    /// Out-of-order pushes rejected since construction — kept on the trace
    /// so a collector that ignored `push`'s return value still cannot lose
    /// samples invisibly.
    rejected: u64,
}

impl PowerTrace {
    /// Creates an empty trace.
    pub fn new() -> PowerTrace {
        PowerTrace::default()
    }

    /// Appends a sample. Out-of-order timestamps are rejected (returns
    /// `false`) and tallied in [`PowerTrace::rejected`].
    pub fn push(&mut self, at: TimeSpan, power: Power) -> bool {
        if let Some(&last) = self.times.last() {
            if at < last {
                self.rejected += 1;
                return false;
            }
        }
        self.times.push(at);
        self.powers.push(power);
        true
    }

    /// Appends a batch of sampling ticks: `Some(power)` entries are recorded,
    /// `None` (lost-tick) entries are skipped — a lost tick has nothing to
    /// record; the integrator, not the trace, accounts for it. Contiguous
    /// runs of observed, in-order samples are appended columnar with two
    /// `extend`s; out-of-order samples are rejected and tallied exactly as
    /// [`PowerTrace::push`] would. Returns the number of samples appended.
    pub fn push_batch(&mut self, samples: &[(TimeSpan, Option<Power>)]) -> usize {
        self.push_batch_inner(samples, true)
    }

    /// [`PowerTrace::push_batch`] for a batch whose out-of-order entries
    /// the caller has *already accounted* (e.g. a pipeline whose monotone
    /// integrator tallied them as rejected before mirroring the batch into
    /// the trace): they are skipped here without touching
    /// [`PowerTrace::rejected`], so the tally is not double-counted.
    /// Returns the number of samples appended.
    pub fn push_batch_vetted(&mut self, samples: &[(TimeSpan, Option<Power>)]) -> usize {
        self.push_batch_inner(samples, false)
    }

    /// [`PowerTrace::push_batch_vetted`] for a batch of observed readings
    /// only: plain `(time, power)` pairs with no lost-tick tombstones and
    /// no per-sample `Option` discriminant. Out-of-order entries are
    /// skipped without tallying, exactly as in the vetted path. Returns
    /// the number of samples appended.
    pub fn push_batch_observed(&mut self, samples: &[(TimeSpan, Power)]) -> usize {
        let mut appended = 0;
        let mut i = 0;
        while i < samples.len() {
            let (at, _) = samples[i];
            if self.times.last().is_some_and(|&last| at < last) {
                i += 1;
                continue;
            }
            // Maximal clean run: samples in non-decreasing order.
            let mut j = i + 1;
            let mut prev = at;
            while j < samples.len() {
                let (t, _) = samples[j];
                if t >= prev {
                    prev = t;
                    j += 1;
                } else {
                    break;
                }
            }
            let run = &samples[i..j];
            self.times.extend(run.iter().map(|&(t, _)| t));
            self.powers.extend(run.iter().map(|&(_, p)| p));
            appended += j - i;
            i = j;
        }
        appended
    }

    fn push_batch_inner(&mut self, samples: &[(TimeSpan, Option<Power>)], tally: bool) -> usize {
        let mut appended = 0;
        let mut i = 0;
        while i < samples.len() {
            let (at, sample) = samples[i];
            if sample.is_none() {
                i += 1;
                continue;
            }
            if self.times.last().is_some_and(|&last| at < last) {
                self.rejected += u64::from(tally);
                i += 1;
                continue;
            }
            // Maximal clean run: observed samples in non-decreasing order.
            let mut j = i + 1;
            let mut prev = at;
            while j < samples.len() {
                match samples[j] {
                    (t, Some(_)) if t >= prev => {
                        prev = t;
                        j += 1;
                    }
                    _ => break,
                }
            }
            let run = &samples[i..j];
            self.times.extend(run.iter().map(|&(t, _)| t));
            self.powers.extend(run.iter().filter_map(|&(_, p)| p));
            appended += j - i;
            i = j;
        }
        appended
    }

    /// Number of out-of-order pushes rejected since construction.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The timestamp column (non-decreasing, index-aligned with
    /// [`PowerTrace::powers`]).
    pub fn times(&self) -> &[TimeSpan] {
        &self.times
    }

    /// The power column (index-aligned with [`PowerTrace::times`]).
    pub fn powers(&self) -> &[Power] {
        &self.powers
    }

    /// The most recent timestamp, if any.
    pub fn last_time(&self) -> Option<TimeSpan> {
        self.times.last().copied()
    }

    /// Iterates `(timestamp, power)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TimeSpan, Power)> + '_ {
        self.times.iter().copied().zip(self.powers.iter().copied())
    }

    /// The time covered by the trace.
    pub fn duration(&self) -> TimeSpan {
        match (self.times.first(), self.times.last()) {
            (Some(&a), Some(&b)) => b - a,
            _ => TimeSpan::ZERO,
        }
    }

    /// Trapezoidal energy integral over the trace.
    pub fn energy(&self) -> Energy {
        let mut total = Energy::ZERO;
        for i in 1..self.times.len() {
            total +=
                (self.powers[i - 1] + self.powers[i]) * 0.5 * (self.times[i] - self.times[i - 1]);
        }
        total
    }

    /// Mean power over the covered window (zero for empty/instant traces).
    pub fn mean_power(&self) -> Power {
        let d = self.duration();
        if d.as_secs() > 0.0 {
            self.energy() / d
        } else {
            Power::ZERO
        }
    }

    /// Peak sampled power (zero for an empty trace).
    pub fn peak_power(&self) -> Power {
        self.powers.iter().copied().fold(Power::ZERO, Power::max)
    }

    /// Power at time `t` by linear interpolation. Returns `None` outside the
    /// covered window or for an empty trace.
    pub fn power_at(&self, t: TimeSpan) -> Option<Power> {
        let first = *self.times.first()?;
        let last = *self.times.last()?;
        if t < first || t > last {
            return None;
        }
        let idx = self.times.partition_point(|&ts| ts <= t).saturating_sub(1);
        let (t0, p0) = (self.times[idx], self.powers[idx]);
        if idx + 1 >= self.times.len() || t == t0 {
            return Some(p0);
        }
        let (t1, p1) = (self.times[idx + 1], self.powers[idx + 1]);
        if t1 == t0 {
            return Some(p1);
        }
        let w = (t - t0) / (t1 - t0);
        Some(p0 + (p1 - p0) * w)
    }

    /// Resamples onto a regular grid of `interval` over the covered window.
    ///
    /// Returns an empty trace if the input has fewer than 2 samples.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is non-positive.
    pub fn resample(&self, interval: TimeSpan) -> PowerTrace {
        assert!(interval.as_secs() > 0.0, "interval must be positive");
        let mut out = PowerTrace::new();
        let (Some(&start), Some(&end)) = (self.times.first(), self.times.last()) else {
            return out;
        };
        if self.times.len() < 2 {
            return out;
        }
        let mut t = start;
        while t < end {
            // lint:allow(panic-discipline) t lies in [start, end] by loop bound
            out.push(t, self.power_at(t).expect("t within window"));
            t += interval;
        }
        // lint:allow(panic-discipline) end is the last sample's timestamp
        out.push(end, self.power_at(end).expect("end within window"));
        out
    }

    /// Detects gaps — sample spacings longer than
    /// [`crate::constants::GAP_DETECTION_FACTOR`] × `interval` — and bridges
    /// them with samples imputed on the nominal grid, so a lossy trace can be
    /// fed to consumers that assume regular sampling. The returned [`GapFill`]
    /// separates the invented energy from the measured trace.
    ///
    /// ```rust
    /// use sustain_telemetry::faults::ImputationPolicy;
    /// use sustain_telemetry::trace::PowerTrace;
    /// use sustain_core::units::{Power, TimeSpan};
    ///
    /// let mut lossy = PowerTrace::new();
    /// lossy.push(TimeSpan::from_secs(0.0), Power::from_watts(100.0));
    /// lossy.push(TimeSpan::from_secs(5.0), Power::from_watts(100.0)); // 4 ticks lost
    /// let fill = lossy.fill_gaps(TimeSpan::from_secs(1.0), ImputationPolicy::LastObservation);
    /// assert_eq!(fill.gaps, 1);
    /// assert_eq!(fill.trace.len(), 6);
    /// assert!((fill.imputed.as_joules() - 500.0).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `interval` is non-positive.
    pub fn fill_gaps(&self, interval: TimeSpan, policy: ImputationPolicy) -> GapFill {
        assert!(interval.as_secs() > 0.0, "interval must be positive");
        let limit = interval * crate::constants::GAP_DETECTION_FACTOR;
        let mut trace = PowerTrace::new();
        let mut imputed = Energy::ZERO;
        let mut gaps = 0;
        if let (Some(&t), Some(&p)) = (self.times.first(), self.powers.first()) {
            trace.push(t, p);
        }
        for i in 1..self.times.len() {
            let (t0, p0) = (self.times[i - 1], self.powers[i - 1]);
            let (t1, p1) = (self.times[i], self.powers[i]);
            if t1 - t0 > limit {
                gaps += 1;
                // Insert grid points across the gap, then account the whole
                // bridged segment (t0 → t1) as imputed energy.
                let mut prev = (t0, p0);
                let mut t = t0 + interval;
                while t < t1 {
                    let p = match policy {
                        ImputationPolicy::Linear => {
                            let frac = (t - t0) / (t1 - t0);
                            p0 + (p1 - p0) * frac
                        }
                        ImputationPolicy::LastObservation => p0,
                        ImputationPolicy::ModelBased { assumed } => assumed,
                    };
                    trace.push(t, p);
                    imputed += (prev.1 + p) * 0.5 * (t - prev.0);
                    prev = (t, p);
                    t += interval;
                }
                imputed += (prev.1 + p1) * 0.5 * (t1 - prev.0);
            }
            trace.push(t1, p1);
        }
        GapFill {
            trace,
            imputed,
            gaps,
        }
    }

    /// Point-wise sum of two traces on the union grid of their timestamps,
    /// treating power outside either trace's window as zero — how rack-level
    /// power is assembled from per-device traces.
    pub fn combine(&self, other: &PowerTrace) -> PowerTrace {
        let mut times: Vec<TimeSpan> = self
            .times
            .iter()
            .chain(other.times.iter())
            .copied()
            .collect();
        times.sort_unstable();
        times.dedup();
        let mut out = PowerTrace::new();
        for t in times {
            let a = self.power_at(t).unwrap_or(Power::ZERO);
            let b = other.power_at(t).unwrap_or(Power::ZERO);
            out.push(t, a + b);
        }
        out
    }
}

// Manual serde impls: the SoA columns serialize as the same
// `{"samples": [[t, p], ...], "rejected": n}` object the pre-SoA derive
// produced, so persisted traces stay readable across the layout change.
impl Serialize for PowerTrace {
    fn to_value(&self) -> serde::Value {
        let samples: Vec<(TimeSpan, Power)> = self.iter().collect();
        serde::Value::Object(vec![
            ("samples".to_owned(), samples.to_value()),
            ("rejected".to_owned(), self.rejected.to_value()),
        ])
    }
}

impl Deserialize for PowerTrace {
    fn from_value(v: &serde::Value) -> Result<PowerTrace, serde::Error> {
        let samples: Vec<(TimeSpan, Power)> = serde::decode_field(v, "samples")?;
        let rejected: u64 = serde::decode_field(v, "rejected")?;
        let (times, powers) = samples.into_iter().unzip();
        Ok(PowerTrace {
            times,
            powers,
            rejected,
        })
    }
}

impl FromIterator<(TimeSpan, Power)> for PowerTrace {
    fn from_iter<I: IntoIterator<Item = (TimeSpan, Power)>>(iter: I) -> PowerTrace {
        let mut t = PowerTrace::new();
        for (at, p) in iter {
            t.push(at, p);
        }
        t
    }
}

impl Extend<(TimeSpan, Power)> for PowerTrace {
    fn extend<I: IntoIterator<Item = (TimeSpan, Power)>>(&mut self, iter: I) {
        for (at, p) in iter {
            self.push(at, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> PowerTrace {
        // 0 W at t=0 to 100 W at t=10.
        vec![
            (TimeSpan::from_secs(0.0), Power::from_watts(0.0)),
            (TimeSpan::from_secs(10.0), Power::from_watts(100.0)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn energy_of_ramp() {
        assert!((ramp().energy().as_joules() - 500.0).abs() < 1e-9);
        assert!((ramp().mean_power().as_watts() - 50.0).abs() < 1e-9);
        assert_eq!(ramp().peak_power(), Power::from_watts(100.0));
    }

    #[test]
    fn empty_and_single_sample_traces() {
        let empty = PowerTrace::new();
        assert!(empty.is_empty());
        assert!(empty.energy().is_zero());
        assert_eq!(empty.mean_power(), Power::ZERO);
        assert_eq!(empty.power_at(TimeSpan::ZERO), None);

        let mut single = PowerTrace::new();
        single.push(TimeSpan::from_secs(1.0), Power::from_watts(5.0));
        assert!(single.energy().is_zero());
        assert_eq!(
            single.power_at(TimeSpan::from_secs(1.0)),
            Some(Power::from_watts(5.0))
        );
    }

    #[test]
    fn interpolation_inside_window() {
        let t = ramp();
        let p = t.power_at(TimeSpan::from_secs(2.5)).unwrap();
        assert!((p.as_watts() - 25.0).abs() < 1e-9);
        assert_eq!(t.power_at(TimeSpan::from_secs(-1.0)), None);
        assert_eq!(t.power_at(TimeSpan::from_secs(11.0)), None);
    }

    #[test]
    fn resample_preserves_energy_of_linear_trace() {
        let t = ramp();
        let r = t.resample(TimeSpan::from_secs(1.0));
        assert_eq!(r.len(), 11);
        assert!((r.energy().as_joules() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn resample_of_short_trace_is_empty() {
        let mut t = PowerTrace::new();
        t.push(TimeSpan::ZERO, Power::from_watts(1.0));
        assert!(t.resample(TimeSpan::from_secs(1.0)).is_empty());
    }

    #[test]
    fn combine_sums_overlapping_power() {
        let a = ramp();
        let b = ramp();
        let c = a.combine(&b);
        assert!((c.energy().as_joules() - 1000.0).abs() < 1e-9);
        let p = c.power_at(TimeSpan::from_secs(5.0)).unwrap();
        assert!((p.as_watts() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn combine_with_disjoint_windows() {
        let a = ramp();
        let b: PowerTrace = vec![
            (TimeSpan::from_secs(20.0), Power::from_watts(10.0)),
            (TimeSpan::from_secs(30.0), Power::from_watts(10.0)),
        ]
        .into_iter()
        .collect();
        let c = a.combine(&b);
        // Energy: both pieces present but gap (10→20 s) interpolates between
        // trace-a's end (treated 0 where absent) — combined grid has points at
        // 0,10,20,30; power at 10 is 100, at 20 is 10.
        assert_eq!(c.len(), 4);
        assert!(c.energy() > a.energy());
    }

    #[test]
    fn rejects_out_of_order_push() {
        let mut t = PowerTrace::new();
        assert!(t.push(TimeSpan::from_secs(5.0), Power::from_watts(1.0)));
        assert!(!t.push(TimeSpan::from_secs(1.0), Power::from_watts(1.0)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.rejected(), 1, "the rejection must be tallied");
    }

    #[test]
    fn push_batch_matches_per_sample_push() {
        let batch: Vec<(TimeSpan, Option<Power>)> = vec![
            (TimeSpan::from_secs(0.0), Some(Power::from_watts(10.0))),
            (TimeSpan::from_secs(1.0), Some(Power::from_watts(20.0))),
            (TimeSpan::from_secs(2.0), None),
            (TimeSpan::from_secs(3.0), Some(Power::from_watts(30.0))),
            (TimeSpan::from_secs(1.5), Some(Power::from_watts(40.0))), // out of order
            (TimeSpan::from_secs(4.0), Some(Power::from_watts(50.0))),
        ];
        let mut batched = PowerTrace::new();
        let appended = batched.push_batch(&batch);
        let mut reference = PowerTrace::new();
        for &(at, sample) in &batch {
            if let Some(p) = sample {
                reference.push(at, p);
            }
        }
        assert_eq!(batched, reference);
        assert_eq!(appended, 4);
        assert_eq!(batched.rejected(), 1);
    }

    #[test]
    fn push_batch_splits_at_every_boundary() {
        // Alternate observed / lost so no two observed samples are adjacent:
        // the run-splitter must still land every observed sample.
        let batch: Vec<(TimeSpan, Option<Power>)> = (0..10)
            .map(|i| {
                let p = (i % 2 == 0).then(|| Power::from_watts(100.0 + i as f64));
                (TimeSpan::from_secs(i as f64), p)
            })
            .collect();
        let mut t = PowerTrace::new();
        assert_eq!(t.push_batch(&batch), 5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.rejected(), 0);
        assert_eq!(t.powers()[1], Power::from_watts(102.0));
    }

    #[test]
    fn soa_columns_stay_aligned() {
        let t = ramp();
        assert_eq!(t.times().len(), t.powers().len());
        assert_eq!(t.last_time(), Some(TimeSpan::from_secs(10.0)));
        let pairs: Vec<(TimeSpan, Power)> = t.iter().collect();
        assert_eq!(pairs.len(), t.len());
        assert_eq!(pairs[0], (TimeSpan::from_secs(0.0), Power::from_watts(0.0)));
    }

    #[test]
    fn serde_round_trip() {
        let t = ramp();
        let json = serde_json::to_string(&t).unwrap();
        let back: PowerTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn fill_gaps_on_gapless_trace_is_identity() {
        let t: PowerTrace = (0..=10)
            .map(|i| (TimeSpan::from_secs(i as f64), Power::from_watts(50.0)))
            .collect();
        let fill = t.fill_gaps(TimeSpan::from_secs(1.0), ImputationPolicy::Linear);
        assert_eq!(fill.trace, t);
        assert_eq!(fill.gaps, 0);
        assert!(fill.imputed.is_zero());
    }

    #[test]
    fn linear_fill_preserves_ramp_energy() {
        // A ramp with the middle missing: linear fill reconstructs it exactly.
        let lossy: PowerTrace = vec![
            (TimeSpan::from_secs(0.0), Power::from_watts(0.0)),
            (TimeSpan::from_secs(1.0), Power::from_watts(10.0)),
            (TimeSpan::from_secs(6.0), Power::from_watts(60.0)),
            (TimeSpan::from_secs(7.0), Power::from_watts(70.0)),
        ]
        .into_iter()
        .collect();
        let fill = lossy.fill_gaps(TimeSpan::from_secs(1.0), ImputationPolicy::Linear);
        assert_eq!(fill.gaps, 1);
        assert_eq!(fill.trace.len(), 8);
        let full_energy = 0.5 * 70.0 * 7.0; // ∫ 10t dt over 7 s
        assert!((fill.trace.energy().as_joules() - full_energy).abs() < 1e-9);
        // The bridged 1→6 s segment is flagged imputed: mean 35 W × 5 s.
        assert!((fill.imputed.as_joules() - 175.0).abs() < 1e-9);
    }

    #[test]
    fn model_based_fill_charges_assumed_power() {
        let lossy: PowerTrace = vec![
            (TimeSpan::from_secs(0.0), Power::from_watts(100.0)),
            (TimeSpan::from_secs(4.0), Power::from_watts(100.0)),
        ]
        .into_iter()
        .collect();
        let fill = lossy.fill_gaps(
            TimeSpan::from_secs(1.0),
            ImputationPolicy::ModelBased {
                assumed: Power::from_watts(200.0),
            },
        );
        // Grid points at 1,2,3 carry 200 W; edges blend with the 100 W
        // endpoints: 150 + 200 + 200 + 150 = 700 J across the bridge.
        assert!((fill.imputed.as_joules() - 700.0).abs() < 1e-9);
        assert_eq!(fill.trace.len(), 5);
    }

    #[test]
    fn duplicate_timestamps_allowed() {
        // Step change at the same instant (e.g. job start).
        let mut t = PowerTrace::new();
        t.push(TimeSpan::ZERO, Power::from_watts(0.0));
        t.push(TimeSpan::from_secs(5.0), Power::from_watts(0.0));
        t.push(TimeSpan::from_secs(5.0), Power::from_watts(100.0));
        t.push(TimeSpan::from_secs(10.0), Power::from_watts(100.0));
        assert!((t.energy().as_joules() - 500.0).abs() < 1e-9);
    }
}
