//! A CodeCarbon-style job-level carbon tracker.
//!
//! [`CarbonTracker`] is the "easy-to-adopt telemetry" the paper calls for
//! (§V-A): workers record energy (or power × time) against named sources and
//! ML phases; the tracker converts the running totals into a
//! [`FootprintReport`] with both operational and amortized embodied carbon.
//!
//! The tracker is `Send + Sync` (internally a `parking_lot::Mutex`) so a
//! multi-threaded training job can record from every worker thread.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;

use sustain_core::embodied::{AllocationPolicy, EmbodiedModel};
use sustain_core::footprint::{CarbonFootprint, FootprintReport};
use sustain_core::intensity::AccountingBasis;
use sustain_core::lifecycle::{Breakdown, MlPhase};
use sustain_core::operational::OperationalAccount;
use sustain_core::quality::DataQualityReport;
use sustain_core::units::{Co2e, Energy, Power, TimeSpan};
use sustain_obs::Obs;

#[derive(Debug, Default)]
struct TrackerState {
    energy_by_source: BTreeMap<String, Energy>,
    energy_by_phase: Breakdown<Energy>,
    machine_time: TimeSpan,
    quality: DataQualityReport,
}

/// Accumulates energy/time records for one job and renders carbon reports.
///
/// ```rust
/// use sustain_telemetry::tracker::CarbonTracker;
/// use sustain_core::operational::OperationalAccount;
/// use sustain_core::intensity::{AccountingBasis, CarbonIntensity};
/// use sustain_core::lifecycle::MlPhase;
/// use sustain_core::pue::Pue;
/// use sustain_core::units::{Energy, Power, TimeSpan};
///
/// # fn main() -> Result<(), sustain_core::Error> {
/// let account = OperationalAccount::new(CarbonIntensity::US_AVERAGE_2021, Pue::new(1.1)?);
/// let tracker = CarbonTracker::new("rm1-training", account);
/// tracker.record_power(
///     "gpu0",
///     MlPhase::OfflineTraining,
///     Power::from_watts(300.0),
///     TimeSpan::from_hours(2.0),
/// );
/// let report = tracker.report(AccountingBasis::LocationBased);
/// assert!(report.footprint.operational().as_grams() > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct CarbonTracker {
    subject: String,
    account: OperationalAccount,
    embodied: Option<(EmbodiedModel, AllocationPolicy)>,
    state: Mutex<TrackerState>,
    obs: Obs,
}

impl fmt::Debug for CarbonTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CarbonTracker")
            .field("subject", &self.subject)
            .field("account", &self.account)
            .field("embodied", &self.embodied)
            .field("total_energy", &self.total_energy())
            .finish()
    }
}

impl CarbonTracker {
    /// Creates a tracker for a named job under an operational account.
    pub fn new(subject: impl Into<String>, account: OperationalAccount) -> CarbonTracker {
        CarbonTracker {
            subject: subject.into(),
            account,
            embodied: None,
            state: Mutex::new(TrackerState::default()),
            obs: sustain_obs::handle(),
        }
    }

    /// Replaces the observability handle captured at construction (the
    /// process-global handle, disabled by default). Recorded energy and
    /// report rendering then show up as tracker counters and spans.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> CarbonTracker {
        self.obs = obs.clone();
        self
    }

    /// Enables embodied-carbon amortization: machine time recorded with
    /// [`CarbonTracker::record_machine_time`] is charged against `model`
    /// under `policy`.
    pub fn with_embodied(
        mut self,
        model: EmbodiedModel,
        policy: AllocationPolicy,
    ) -> CarbonTracker {
        self.embodied = Some((model, policy));
        self
    }

    /// The job name.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// Records an energy consumption against a named source and phase.
    pub fn record_energy(&self, source: &str, phase: MlPhase, energy: Energy) {
        {
            let mut st = self.state.lock();
            *st.energy_by_source
                .entry(source.to_owned())
                .or_insert(Energy::ZERO) += energy;
            st.energy_by_phase[phase] += energy;
        }
        if self.obs.enabled() {
            self.obs.counter("tracker_records_total").inc();
            self.obs
                .counter("tracker_energy_joules_total")
                .add(energy.as_joules());
        }
    }

    /// Records a constant power draw over a duration.
    pub fn record_power(&self, source: &str, phase: MlPhase, power: Power, duration: TimeSpan) {
        self.record_energy(source, phase, power * duration);
    }

    /// Records machine occupancy time for embodied amortization.
    pub fn record_machine_time(&self, span: TimeSpan) {
        self.state.lock().machine_time += span;
    }

    /// Merges a telemetry stream's data-quality accounting (e.g. from a
    /// [`crate::meter::FaultTolerantIntegrator`]) into the job's report.
    /// A tracker that never records quality emits reports without a quality
    /// section, exactly as before the fault layer existed.
    pub fn record_quality(&self, quality: &DataQualityReport) {
        self.state.lock().quality.merge(quality);
    }

    /// Total recorded IT energy.
    pub fn total_energy(&self) -> Energy {
        self.state.lock().energy_by_source.values().copied().sum()
    }

    /// Energy recorded against one source (zero if unknown).
    pub fn energy_of(&self, source: &str) -> Energy {
        self.state
            .lock()
            .energy_by_source
            .get(source)
            .copied()
            .unwrap_or(Energy::ZERO)
    }

    /// The per-source totals, sorted by source name.
    pub fn by_source(&self) -> Vec<(String, Energy)> {
        self.state
            .lock()
            .energy_by_source
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// The amortized embodied carbon so far (zero if not configured).
    pub fn embodied_co2(&self) -> Co2e {
        match &self.embodied {
            Some((model, policy)) => {
                let span = self.state.lock().machine_time;
                model
                    .amortize(span, *policy)
                    // lint:allow(panic-discipline) machine_time only accumulates non-negative spans
                    .expect("recorded machine time is non-negative")
            }
            None => Co2e::ZERO,
        }
    }

    /// Renders the current totals as a [`FootprintReport`]. The report
    /// carries a quality section only when quality was recorded.
    pub fn report(&self, basis: AccountingBasis) -> FootprintReport {
        let _span = self.obs.span("tracker.report");
        let (total, by_phase, quality) = {
            let st = self.state.lock();
            (
                st.energy_by_source.values().copied().sum::<Energy>(),
                st.energy_by_phase,
                st.quality,
            )
        };
        let operational = self.account.emissions(total, basis);
        let footprint = CarbonFootprint::new(operational, self.embodied_co2());
        let mut report = FootprintReport::new(&self.subject, basis, total, footprint);
        for (phase, e) in by_phase.iter() {
            report.record_phase(phase, self.account.emissions(e, basis));
        }
        if !quality.is_empty() {
            report = report.with_quality(quality);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_core::intensity::CarbonIntensity;
    use sustain_core::pue::Pue;
    use sustain_core::units::Fraction;

    fn account() -> OperationalAccount {
        OperationalAccount::new(
            CarbonIntensity::from_grams_per_kwh(400.0),
            Pue::new(1.1).unwrap(),
        )
    }

    #[test]
    fn accumulates_energy_by_source_and_phase() {
        let t = CarbonTracker::new("job", account());
        t.record_energy(
            "gpu0",
            MlPhase::OfflineTraining,
            Energy::from_kilowatt_hours(1.0),
        );
        t.record_energy(
            "gpu1",
            MlPhase::OfflineTraining,
            Energy::from_kilowatt_hours(2.0),
        );
        t.record_energy(
            "cpu",
            MlPhase::DataProcessing,
            Energy::from_kilowatt_hours(0.5),
        );
        assert_eq!(t.total_energy(), Energy::from_kilowatt_hours(3.5));
        assert_eq!(t.energy_of("gpu1"), Energy::from_kilowatt_hours(2.0));
        assert_eq!(t.energy_of("missing"), Energy::ZERO);
        assert_eq!(t.by_source().len(), 3);
    }

    #[test]
    fn report_applies_account() {
        let t = CarbonTracker::new("job", account());
        t.record_energy(
            "gpu0",
            MlPhase::Inference,
            Energy::from_kilowatt_hours(10.0),
        );
        let r = t.report(AccountingBasis::LocationBased);
        // 10 kWh × 1.1 × 400 g = 4.4 kg.
        assert!((r.footprint.operational().as_kilograms() - 4.4).abs() < 1e-9);
        assert!(r.is_phase_consistent(Co2e::from_grams(1e-6)));
        assert_eq!(r.subject, "job");
    }

    #[test]
    fn market_based_report_respects_matching() {
        let acct = account().with_renewable_matching(Fraction::ONE);
        let t = CarbonTracker::new("green-job", acct);
        t.record_energy("gpu", MlPhase::Inference, Energy::from_kilowatt_hours(5.0));
        assert!(t
            .report(AccountingBasis::MarketBased)
            .footprint
            .operational()
            .is_zero());
        assert!(!t
            .report(AccountingBasis::LocationBased)
            .footprint
            .operational()
            .is_zero());
    }

    #[test]
    fn embodied_amortization_in_report() {
        let t = CarbonTracker::new("job", account()).with_embodied(
            EmbodiedModel::gpu_server().unwrap(),
            AllocationPolicy::TimeShare,
        );
        t.record_machine_time(TimeSpan::from_years(1.0));
        // 2000 kg over 4 years → 500 kg for a year.
        assert!((t.embodied_co2().as_kilograms() - 500.0).abs() < 1e-6);
        let r = t.report(AccountingBasis::LocationBased);
        assert!((r.footprint.embodied().as_kilograms() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn no_embodied_configured_is_zero() {
        let t = CarbonTracker::new("job", account());
        t.record_machine_time(TimeSpan::from_years(10.0));
        assert!(t.embodied_co2().is_zero());
    }

    #[test]
    fn record_power_is_energy_shortcut() {
        let t = CarbonTracker::new("job", account());
        t.record_power(
            "gpu",
            MlPhase::OfflineTraining,
            Power::from_kilowatts(1.0),
            TimeSpan::from_hours(2.0),
        );
        assert_eq!(t.total_energy(), Energy::from_kilowatt_hours(2.0));
    }

    #[test]
    fn tracker_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CarbonTracker>();
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let t = Arc::new(CarbonTracker::new("job", account()));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        t.record_energy(
                            &format!("gpu{i}"),
                            MlPhase::OfflineTraining,
                            Energy::from_joules(1.0),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!((t.total_energy().as_joules() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn quality_free_tracker_emits_no_quality_section() {
        let t = CarbonTracker::new("job", account());
        t.record_energy("gpu", MlPhase::Inference, Energy::from_joules(1.0));
        let r = t.report(AccountingBasis::LocationBased);
        assert!(r.quality.is_none());
        assert!(!r.to_string().contains("quality"));
    }

    #[test]
    fn recorded_quality_shows_in_report() {
        let t = CarbonTracker::new("job", account());
        t.record_energy("gpu", MlPhase::Inference, Energy::from_kilowatt_hours(1.0));
        let q = DataQualityReport {
            expected_samples: 100,
            observed_samples: 90,
            measured_energy: Energy::from_kilowatt_hours(0.9),
            imputed_energy: Energy::from_kilowatt_hours(0.1),
            ..DataQualityReport::default()
        };
        t.record_quality(&q);
        let r = t.report(AccountingBasis::LocationBased);
        let got = r.quality.expect("quality must be attached");
        assert!((got.coverage().value() - 0.9).abs() < 1e-12);
        assert!(r.to_string().contains("quality"));
        // A second stream merges rather than replaces.
        t.record_quality(&q);
        let merged = t
            .report(AccountingBasis::LocationBased)
            .quality
            .expect("still attached");
        assert_eq!(merged.expected_samples, 200);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = CarbonTracker::new("job", account());
        assert!(format!("{t:?}").contains("CarbonTracker"));
    }
}
