//! Differential property suite for the batched SoA integration kernels.
//!
//! The batched entry points ([`EnergyIntegrator::push_batch`],
//! [`FaultTolerantIntegrator::push_batch`], the dense `*_observed`
//! variants, and the SoA [`PowerTrace`] batch appends) promise *bitwise*
//! equivalence with the per-sample paths — same float accumulation order,
//! same tallies, same imputation — for any sample sequence and any way of
//! cutting it into batches. These properties drive arbitrary fault shapes
//! (lost ticks, out-of-order stragglers, gaps past the detection limit)
//! through both paths at arbitrary batch boundaries and require identical
//! end states.

use proptest::prelude::*;

use sustain_core::units::{Power, TimeSpan};
use sustain_telemetry::faults::ImputationPolicy;
use sustain_telemetry::meter::{EnergyIntegrator, FaultTolerantIntegrator};
use sustain_telemetry::trace::PowerTrace;

/// Decodes a proptest-generated tick list into a fault-bearing sample
/// sequence. Per tick, the kind byte selects the timestamp step — clean
/// (+1 s), a gap past the detection limit (+4.5 s), or an out-of-order
/// regression (−0.6 s) — and whether the reading was lost (`None`).
fn decode(ticks: &[(u8, f64)]) -> Vec<(TimeSpan, Option<Power>)> {
    let mut at = 100.0f64;
    ticks
        .iter()
        .map(|&(kind, watts)| {
            at += match kind % 8 {
                0 => -0.6,
                1 => 4.5,
                _ => 1.0,
            };
            let sample = (kind % 8 != 2).then(|| Power::from_watts(watts));
            (TimeSpan::from_secs(at), sample)
        })
        .collect()
}

/// Turns raw cut points into sorted, deduplicated batch boundaries over
/// `len` samples, always including both ends.
fn boundaries(cuts: &[usize], len: usize) -> Vec<usize> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (len + 1)).collect();
    bounds.push(0);
    bounds.push(len);
    bounds.sort_unstable();
    bounds.dedup();
    bounds
}

fn policy(pick: u8) -> ImputationPolicy {
    match pick % 3 {
        0 => ImputationPolicy::Linear,
        1 => ImputationPolicy::LastObservation,
        _ => ImputationPolicy::ModelBased {
            assumed: Power::from_watts(111.0),
        },
    }
}

proptest! {
    /// `FaultTolerantIntegrator::push_batch` at arbitrary batch
    /// boundaries is bitwise identical to per-sample pushes: same quality
    /// report, same measured/imputed energy bits, same resume point.
    #[test]
    fn fault_tolerant_push_batch_is_split_invariant(
        ticks in prop::collection::vec((0u8..255, 1.0f64..500.0), 1..120),
        cuts in prop::collection::vec(0usize..128, 0..6),
        pick in 0u8..255,
    ) {
        let samples = decode(&ticks);
        let interval = TimeSpan::from_secs(1.0);

        let mut reference = FaultTolerantIntegrator::new(interval, policy(pick));
        let mut accepted_ref = 0usize;
        for &(at, p) in &samples {
            accepted_ref += usize::from(reference.push(at, p) && p.is_some());
        }

        let mut batched = FaultTolerantIntegrator::new(interval, policy(pick));
        let mut accepted_batch = 0usize;
        for pair in boundaries(&cuts, samples.len()).windows(2) {
            accepted_batch += batched.push_batch(&samples[pair[0]..pair[1]]);
        }

        prop_assert_eq!(accepted_ref, accepted_batch);
        prop_assert_eq!(reference.last_sample(), batched.last_sample());
        let (r, b) = (reference.report(), batched.report());
        prop_assert_eq!(&r, &b);
        prop_assert_eq!(
            r.measured_energy.as_joules().to_bits(),
            b.measured_energy.as_joules().to_bits(),
            "measured energy must match bit for bit"
        );
        prop_assert_eq!(
            r.imputed_energy.as_joules().to_bits(),
            b.imputed_energy.as_joules().to_bits(),
            "imputed energy must match bit for bit"
        );
    }

    /// `EnergyIntegrator::push_batch` at arbitrary boundaries leaves the
    /// integrator in exactly the per-sample end state (the struct is
    /// `PartialEq`: energy, counts, window, resume point).
    #[test]
    fn energy_push_batch_is_split_invariant(
        ticks in prop::collection::vec((0u8..255, 1.0f64..500.0), 1..120),
        cuts in prop::collection::vec(0usize..128, 0..6),
    ) {
        let dense: Vec<(TimeSpan, Power)> = decode(&ticks)
            .into_iter()
            .filter_map(|(t, p)| p.map(|p| (t, p)))
            .collect();

        let mut reference = EnergyIntegrator::new();
        for &(at, p) in &dense {
            reference.push(at, p);
        }
        let mut batched = EnergyIntegrator::new();
        for pair in boundaries(&cuts, dense.len()).windows(2) {
            batched.push_batch(&dense[pair[0]..pair[1]]);
        }
        prop_assert_eq!(reference, batched);
        prop_assert_eq!(
            reference.energy().as_joules().to_bits(),
            batched.energy().as_joules().to_bits()
        );
    }

    /// The SoA trace matches a plain AoS reference model under per-sample
    /// pushes, batch appends at arbitrary boundaries agree with both, and
    /// `fill_gaps` reads the two columns coherently however the trace was
    /// built.
    #[test]
    fn trace_soa_matches_aos_reference_model(
        ticks in prop::collection::vec((0u8..255, 1.0f64..500.0), 1..120),
        cuts in prop::collection::vec(0usize..128, 0..6),
    ) {
        let samples = decode(&ticks);

        // Reference AoS model: a flat (time, power) vec with the trace's
        // accept rule — observed samples append unless out of order.
        let mut model: Vec<(f64, f64)> = Vec::new();
        let mut model_rejected = 0u64;
        for &(at, p) in &samples {
            let Some(p) = p else { continue };
            if model.last().is_some_and(|&(last, _)| at.as_secs() < last) {
                model_rejected += 1;
            } else {
                model.push((at.as_secs(), p.as_watts()));
            }
        }

        let mut pushed = PowerTrace::new();
        for &(at, p) in &samples {
            if let Some(p) = p {
                pushed.push(at, p);
            }
        }
        let mut batched = PowerTrace::new();
        for pair in boundaries(&cuts, samples.len()).windows(2) {
            batched.push_batch(&samples[pair[0]..pair[1]]);
        }

        // Iteration over the SoA columns reproduces the AoS model bit for
        // bit, and the batched build matches the per-sample build exactly.
        prop_assert_eq!(pushed.len(), model.len());
        for ((t, p), &(mt, mp)) in pushed.iter().zip(&model) {
            prop_assert_eq!(t.as_secs().to_bits(), mt.to_bits());
            prop_assert_eq!(p.as_watts().to_bits(), mp.to_bits());
        }
        prop_assert_eq!(pushed.rejected(), model_rejected);
        prop_assert_eq!(batched.times(), pushed.times());
        prop_assert_eq!(batched.powers(), pushed.powers());
        prop_assert_eq!(batched.rejected(), pushed.rejected());

        let interval = TimeSpan::from_secs(1.0);
        let fill_pushed = pushed.fill_gaps(interval, ImputationPolicy::Linear);
        let fill_batched = batched.fill_gaps(interval, ImputationPolicy::Linear);
        prop_assert_eq!(fill_pushed, fill_batched);
    }

    /// The dense observed-only fast paths (`push_batch_observed` on the
    /// integrator and the trace) are bitwise identical to the
    /// `Option`-typed batch paths over the same readings.
    #[test]
    fn observed_fast_path_matches_option_path(
        ticks in prop::collection::vec((0u8..255, 1.0f64..500.0), 1..120),
        cuts in prop::collection::vec(0usize..128, 0..6),
        pick in 0u8..255,
    ) {
        let dense: Vec<(TimeSpan, Power)> = decode(&ticks)
            .into_iter()
            .filter_map(|(t, p)| p.map(|p| (t, p)))
            .collect();
        let wrapped: Vec<(TimeSpan, Option<Power>)> =
            dense.iter().map(|&(t, p)| (t, Some(p))).collect();
        let interval = TimeSpan::from_secs(1.0);

        let mut option_path = FaultTolerantIntegrator::new(interval, policy(pick));
        let mut dense_path = FaultTolerantIntegrator::new(interval, policy(pick));
        let mut accepted_option = 0usize;
        let mut accepted_dense = 0usize;
        for pair in boundaries(&cuts, dense.len()).windows(2) {
            accepted_option += option_path.push_batch(&wrapped[pair[0]..pair[1]]);
            accepted_dense += dense_path.push_batch_observed(&dense[pair[0]..pair[1]]);
        }
        prop_assert_eq!(accepted_option, accepted_dense);
        prop_assert_eq!(option_path.last_sample(), dense_path.last_sample());
        prop_assert_eq!(option_path.report(), dense_path.report());

        let mut trace_option = PowerTrace::new();
        let mut trace_dense = PowerTrace::new();
        for pair in boundaries(&cuts, dense.len()).windows(2) {
            trace_option.push_batch_vetted(&wrapped[pair[0]..pair[1]]);
            trace_dense.push_batch_observed(&dense[pair[0]..pair[1]]);
        }
        prop_assert_eq!(trace_option.times(), trace_dense.times());
        prop_assert_eq!(trace_option.powers(), trace_dense.powers());
        // Both vetted paths skip out-of-order entries without tallying.
        prop_assert_eq!(trace_option.rejected(), 0);
        prop_assert_eq!(trace_dense.rejected(), 0);
    }
}
