//! Property tests for the fault-injection layer and the degradation-tolerant
//! reading path: whatever mixture of dropout, noise, skew and loss a
//! [`FaultPlan`] throws at it, trapezoidal energy accounting must stay
//! non-negative, monotone, and self-consistent.

use proptest::prelude::*;

use sustain_core::units::{Energy, Power, TimeSpan};
use sustain_telemetry::faults::{wrapping_delta, FaultInjector, FaultPlan, ImputationPolicy};
use sustain_telemetry::meter::FaultTolerantIntegrator;

proptest! {
    #[test]
    fn integration_is_non_negative_and_monotone_under_faults(
        seed in 0u64..1_000_000,
        dropout in 0.0f64..0.6,
        burst_rate in 0.0f64..0.5,
        base_watts in 10.0f64..500.0,
    ) {
        let plan = FaultPlan::none()
            .with_seed(seed)
            .with_dropout(dropout)
            .with_noise_burst(burst_rate, Power::from_watts(100.0))
            .with_clock_skew(0.5);
        let mut inj = FaultInjector::new(&plan, "prop-stream");
        let interval = TimeSpan::from_secs(1.0);
        let mut m = FaultTolerantIntegrator::new(interval, ImputationPolicy::Linear);
        let mut prev = Energy::ZERO;
        for i in 0..200 {
            let truth =
                Power::from_watts(base_watts * (1.0 + 0.5 * (i as f64 * 0.1).sin()));
            let at = interval * i as f64;
            match inj.corrupt(at, interval, truth) {
                Some((t, p)) => {
                    prop_assert!(p >= Power::ZERO, "corrupted power went negative");
                    m.push(t, Some(p));
                }
                None => {
                    m.push(at, None);
                }
            }
            let e = m.energy();
            prop_assert!(e >= Energy::ZERO, "energy went negative: {e:?}");
            prop_assert!(e >= prev, "energy decreased: {e:?} after {prev:?}");
            prev = e;
        }
        let q = m.report();
        prop_assert!(q.coverage().value() <= 1.0);
        prop_assert!(q.observed_samples <= q.expected_samples);
        prop_assert!(q.observed_samples > 0, "200 samples at ≤60% dropout");
        let recombined = q.measured_energy + q.imputed_energy;
        prop_assert!(
            (q.accounted_energy() - recombined).as_joules().abs() < 1e-9,
            "measured/imputed split must recombine exactly"
        );
    }

    #[test]
    fn zero_rate_plan_is_identity_for_any_stream(
        seed in any::<u64>(),
        watts in 0.0f64..1000.0,
    ) {
        let plan = FaultPlan::none().with_seed(seed);
        let mut inj = FaultInjector::new(&plan, "identity");
        let interval = TimeSpan::from_secs(1.0);
        for i in 0..50 {
            let at = interval * i as f64;
            let truth = Power::from_watts(watts + i as f64);
            prop_assert_eq!(inj.corrupt(at, interval, truth), Some((at, truth)));
        }
        prop_assert!(inj.counts().is_empty());
    }

    #[test]
    fn dropout_only_plans_never_corrupt_surviving_samples(
        seed in 0u64..1_000_000,
        dropout in 0.0f64..0.9,
    ) {
        let plan = FaultPlan::none().with_seed(seed).with_dropout(dropout);
        let mut inj = FaultInjector::new(&plan, "dropout-only");
        let interval = TimeSpan::from_secs(1.0);
        for i in 0..100 {
            let at = interval * i as f64;
            let truth = Power::from_watts(42.0);
            if let Some(sample) = inj.corrupt(at, interval, truth) {
                prop_assert_eq!(sample, (at, truth), "survivors must pass unchanged");
            }
        }
    }

    #[test]
    fn wrapping_delta_is_non_negative_and_bounded(
        before in 0u64..10_000,
        after in 0u64..10_000,
    ) {
        let period = 1000u64;
        let e = wrapping_delta(before, after, Some(period));
        prop_assert!(e >= Energy::ZERO);
        prop_assert!(e.as_joules() <= period as f64 / 1e6);
    }

    #[test]
    fn wrapping_delta_agrees_with_plain_when_no_rollover(
        before in 0u64..1000,
        delta in 0u64..999,
    ) {
        let period = 2000u64;
        prop_assume!(before + delta < period);
        prop_assert_eq!(
            wrapping_delta(before, before + delta, Some(period)),
            wrapping_delta(before, before + delta, None)
        );
    }
}
