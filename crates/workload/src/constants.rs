//! Named workload-model constants with provenance.
//!
//! The `cargo xtask lint` rule `magic-constant` bans bare literals in
//! carbon-unit constructors, so every calibrated figure the workload models
//! rely on lives here with a doc comment recording where it comes from.

/// Operating power of a petabyte of HDD storage (drives + enclosures +
/// fans), in watts — order-of-magnitude from datacenter storage TCO studies
/// the paper's data-growth discussion (§II-B) leans on.
pub const HDD_POWER_PER_PB_WATTS: f64 = 900.0;

/// Operating power of a petabyte of NAND-flash SSD storage, in watts —
/// flash idles far below spinning media.
pub const SSD_POWER_PER_PB_WATTS: f64 = 350.0;

/// Embodied carbon of a deployed petabyte of HDD, in tonnes CO₂e.
pub const HDD_EMBODIED_PER_PB_TONNES: f64 = 3.0;

/// Embodied carbon of a deployed petabyte of SSD, in tonnes CO₂e — NAND
/// fabrication dominates, so flash embodied ≫ HDD per byte ("Chasing
/// Carbon" [Gupta et al., 2021]).
pub const SSD_EMBODIED_PER_PB_TONNES: f64 = 25.0;

/// Per-prediction serving energy of the language-model service in the
/// paper-shaped fleet, in joules — LM decoding is compute-heavy per query.
pub const LM_ENERGY_PER_PREDICTION_J: f64 = 8.0;

/// Per-prediction serving energies of the five recommendation services, in
/// joules — RM inference is memory-bound and cheap per query (§II-C's
/// trillions-of-predictions-per-day framing).
pub const RM_ENERGY_PER_PREDICTION_J: [f64; 5] = [0.012, 0.014, 0.020, 0.018, 0.019];
