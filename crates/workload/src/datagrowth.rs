//! Exponential growth trends behind Figure 2 (b)–(d).
//!
//! The paper's growth facts, each encoded as a calibrated [`GrowthTrend`]:
//!
//! * training data for two recommendation use cases grew **2.4×** and **1.9×**
//!   over two years (2019–2021), reaching exabyte scale;
//! * data-ingestion bandwidth demand grew **3.2×** over the same period;
//! * recommendation-model sizes grew **20×**;
//! * AI training infrastructure capacity grew **2.9×** and inference capacity
//!   **2.5×** over 1.5 years;
//! * fleet-wide inference volume more than doubled in three years.

use serde::{Deserialize, Serialize};

use sustain_core::units::{DataRate, DataVolume, TimeSpan};

/// An exponential growth trend: `value(t) = start × factor^(t / period)`.
///
/// ```rust
/// use sustain_workload::datagrowth::GrowthTrend;
/// use sustain_core::units::TimeSpan;
///
/// let data = GrowthTrend::recsys_data_primary();
/// let after_two_years = data.value_at(TimeSpan::from_years(2.0));
/// assert!((after_two_years / data.start() - 2.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrowthTrend {
    start: f64,
    factor: f64,
    period: TimeSpan,
}

impl GrowthTrend {
    /// Creates a trend from a starting value and a growth factor per period.
    ///
    /// # Panics
    ///
    /// Panics if `start` or `factor` is not positive, or `period` is not positive.
    pub fn new(start: f64, factor: f64, period: TimeSpan) -> GrowthTrend {
        assert!(start > 0.0, "start must be positive");
        assert!(factor > 0.0, "factor must be positive");
        assert!(period.as_secs() > 0.0, "period must be positive");
        GrowthTrend {
            start,
            factor,
            period,
        }
    }

    /// Fig 2b: primary recommendation use case — 2.4× data over 2 years,
    /// starting from 1 exabyte (normalized to the paper's "exabyte scale").
    pub fn recsys_data_primary() -> GrowthTrend {
        GrowthTrend::new(1.0, 2.4, TimeSpan::from_years(2.0))
    }

    /// Fig 2b: second recommendation use case — 1.9× over 2 years.
    pub fn recsys_data_secondary() -> GrowthTrend {
        GrowthTrend::new(0.6, 1.9, TimeSpan::from_years(2.0))
    }

    /// Fig 2b: data-ingestion bandwidth demand — 3.2× over 2 years.
    pub fn ingestion_bandwidth() -> GrowthTrend {
        GrowthTrend::new(1.0, 3.2, TimeSpan::from_years(2.0))
    }

    /// Fig 2c: recommendation model size — 20× over 2 years.
    pub fn rm_model_size() -> GrowthTrend {
        GrowthTrend::new(1.0, 20.0, TimeSpan::from_years(2.0))
    }

    /// Fig 2d: AI training capacity — 2.9× over 1.5 years.
    pub fn training_capacity() -> GrowthTrend {
        GrowthTrend::new(1.0, 2.9, TimeSpan::from_years(1.5))
    }

    /// Fig 2d: AI inference capacity — 2.5× over 1.5 years.
    pub fn inference_capacity() -> GrowthTrend {
        GrowthTrend::new(1.0, 2.5, TimeSpan::from_years(1.5))
    }

    /// Fleet inference volume — "more than doubling in the past 3 years".
    pub fn inference_volume() -> GrowthTrend {
        GrowthTrend::new(1.0, 2.2, TimeSpan::from_years(3.0))
    }

    /// The starting value.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// The growth factor per period.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The period over which `factor` applies.
    pub fn period(&self) -> TimeSpan {
        self.period
    }

    /// The value after elapsed time `t` (negative `t` extrapolates backwards).
    pub fn value_at(&self, t: TimeSpan) -> f64 {
        self.start * self.factor.powf(t / self.period)
    }

    /// The multiplicative growth over an arbitrary span.
    pub fn factor_over(&self, span: TimeSpan) -> f64 {
        self.factor.powf(span / self.period)
    }

    /// Time for the value to double (`None` if the trend is flat or shrinking).
    pub fn doubling_time(&self) -> Option<TimeSpan> {
        if self.factor <= 1.0 {
            return None;
        }
        Some(self.period * (2f64.ln() / self.factor.ln()))
    }

    /// Samples `(years, value)` pairs at `steps`+1 evenly-spaced times over
    /// `[0, horizon]` — the series a figure plots.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn series(&self, horizon: TimeSpan, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps > 0, "need at least one step");
        (0..=steps)
            .map(|i| {
                let t = horizon * (i as f64 / steps as f64);
                (t.as_years(), self.value_at(t))
            })
            .collect()
    }
}

/// The Figure 2b data series in physical units: data volume reaching exabyte
/// scale and the resulting ingestion-bandwidth demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestionDemand {
    data_trend: GrowthTrend,
    bandwidth_trend: GrowthTrend,
    base_volume: DataVolume,
    base_bandwidth: DataRate,
}

impl IngestionDemand {
    /// The paper's calibration: 1 EB of training data and 1 TB/s of ingestion
    /// bandwidth at the 2019 baseline.
    pub fn paper_default() -> IngestionDemand {
        IngestionDemand {
            data_trend: GrowthTrend::recsys_data_primary(),
            bandwidth_trend: GrowthTrend::ingestion_bandwidth(),
            base_volume: DataVolume::from_exabytes(1.0),
            base_bandwidth: DataRate::from_gigabytes_per_sec(1000.0),
        }
    }

    /// Training-data volume at elapsed time `t`.
    pub fn volume_at(&self, t: TimeSpan) -> DataVolume {
        self.base_volume * self.data_trend.factor_over(t)
    }

    /// Ingestion bandwidth demand at elapsed time `t`.
    pub fn bandwidth_at(&self, t: TimeSpan) -> DataRate {
        self.base_bandwidth * self.bandwidth_trend.factor_over(t)
    }

    /// Bandwidth grows faster than data: the per-byte ingestion pressure
    /// (bandwidth / volume growth) at time `t`, relative to the baseline.
    pub fn pressure_at(&self, t: TimeSpan) -> f64 {
        self.bandwidth_trend.factor_over(t) / self.data_trend.factor_over(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_growth_factors() {
        let two_years = TimeSpan::from_years(2.0);
        assert!((GrowthTrend::recsys_data_primary().factor_over(two_years) - 2.4).abs() < 1e-9);
        assert!((GrowthTrend::recsys_data_secondary().factor_over(two_years) - 1.9).abs() < 1e-9);
        assert!((GrowthTrend::ingestion_bandwidth().factor_over(two_years) - 3.2).abs() < 1e-9);
        assert!((GrowthTrend::rm_model_size().factor_over(two_years) - 20.0).abs() < 1e-9);
        let infra = TimeSpan::from_years(1.5);
        assert!((GrowthTrend::training_capacity().factor_over(infra) - 2.9).abs() < 1e-9);
        assert!((GrowthTrend::inference_capacity().factor_over(infra) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn inference_volume_more_than_doubles_in_3y() {
        let f = GrowthTrend::inference_volume().factor_over(TimeSpan::from_years(3.0));
        assert!(f > 2.0);
    }

    #[test]
    fn model_growth_outpaces_hardware_memory() {
        // Paper: RM sizes grew 20×/2y while accelerator memory grew <2×/2y —
        // strong-scaling demand outpaces hardware.
        let model_2y = GrowthTrend::rm_model_size().factor_over(TimeSpan::from_years(2.0));
        let hbm_2y: f64 = (80.0f64 / 32.0).powf(2.0 / 3.0); // V100→A100 over 3y
        assert!(model_2y > 10.0 * hbm_2y);
    }

    #[test]
    fn value_extrapolates_both_directions() {
        let t = GrowthTrend::new(100.0, 4.0, TimeSpan::from_years(1.0));
        assert!((t.value_at(TimeSpan::from_years(0.5)) - 200.0).abs() < 1e-9);
        assert!((t.value_at(TimeSpan::from_years(-1.0)) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn doubling_time() {
        let t = GrowthTrend::new(1.0, 2.0, TimeSpan::from_years(1.0));
        assert!((t.doubling_time().unwrap().as_years() - 1.0).abs() < 1e-9);
        let flat = GrowthTrend::new(1.0, 1.0, TimeSpan::from_years(1.0));
        assert!(flat.doubling_time().is_none());
        let shrinking = GrowthTrend::new(1.0, 0.5, TimeSpan::from_years(1.0));
        assert!(shrinking.doubling_time().is_none());
    }

    #[test]
    fn series_is_monotone_for_growth() {
        let s = GrowthTrend::recsys_data_primary().series(TimeSpan::from_years(2.0), 8);
        assert_eq!(s.len(), 9);
        for w in s.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
        assert!((s[8].1 / s[0].1 - 2.4).abs() < 1e-9);
    }

    #[test]
    fn ingestion_demand_reaches_exabyte_scale() {
        let d = IngestionDemand::paper_default();
        let vol = d.volume_at(TimeSpan::from_years(2.0));
        assert!((vol.as_exabytes() - 2.4).abs() < 1e-9);
        let bw = d.bandwidth_at(TimeSpan::from_years(2.0));
        assert!((bw.as_gigabytes_per_sec() - 3200.0).abs() < 1e-6);
        // Bandwidth pressure rises: 3.2/2.4 ≈ 1.33× per byte stored.
        assert!((d.pressure_at(TimeSpan::from_years(2.0)) - 3.2 / 2.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn rejects_non_positive_factor() {
        let _ = GrowthTrend::new(1.0, 0.0, TimeSpan::from_years(1.0));
    }
}
