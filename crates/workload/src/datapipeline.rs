//! The data storage and ingestion pipeline's energy (§I, Fig 3b).
//!
//! "The increase in data size has led to a 3.2× increase in data ingestion
//! bandwidth demand. Given this increase, data storage and the ingestion
//! pipeline accounts for a significant portion of the infrastructure and
//! power capacity compared to ML training" — RM1's end-to-end energy is 31 %
//! data. This module gives that 31 % a bottom-up model: storage tiers with
//! per-petabyte power/embodied characteristics, plus a preprocessing tier
//! whose power scales with ingestion bandwidth.

use serde::{Deserialize, Serialize};
use std::fmt;

use sustain_core::units::{Co2e, DataRate, DataVolume, Energy, Fraction, Power, TimeSpan};

/// Storage media with distinct power/embodied profiles — the paper notes the
/// environmental characteristics of SSD/NAND-flash/HDD technologies differ by
/// orders of magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum StorageMedia {
    /// Spinning disk: cheap embodied, higher operating power.
    Hdd,
    /// NAND-flash SSD: high embodied carbon per byte, lower operating power.
    Ssd,
}

impl StorageMedia {
    /// Operating power per petabyte stored (drives + enclosures + fans).
    pub fn power_per_pb(&self) -> Power {
        match self {
            StorageMedia::Hdd => Power::from_watts(crate::constants::HDD_POWER_PER_PB_WATTS),
            StorageMedia::Ssd => Power::from_watts(crate::constants::SSD_POWER_PER_PB_WATTS),
        }
    }

    /// Embodied carbon per petabyte deployed.
    pub fn embodied_per_pb(&self) -> Co2e {
        match self {
            // NAND fabrication dominates: flash embodied ≫ HDD per byte.
            StorageMedia::Hdd => Co2e::from_tonnes(crate::constants::HDD_EMBODIED_PER_PB_TONNES),
            StorageMedia::Ssd => Co2e::from_tonnes(crate::constants::SSD_EMBODIED_PER_PB_TONNES),
        }
    }
}

impl fmt::Display for StorageMedia {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageMedia::Hdd => f.write_str("hdd"),
            StorageMedia::Ssd => f.write_str("ssd"),
        }
    }
}

/// A data storage + ingestion pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPipeline {
    stored: DataVolume,
    hot_fraction: Fraction,
    ingestion: DataRate,
    preprocess_joules_per_byte: f64,
}

impl DataPipeline {
    /// Creates a pipeline: `stored` bytes (of which `hot_fraction` sits on
    /// SSD, the rest on HDD), ingesting at `ingestion` with
    /// `preprocess_joules_per_byte` of CPU preprocessing energy per byte.
    ///
    /// # Panics
    ///
    /// Panics if `preprocess_joules_per_byte` is negative.
    pub fn new(
        stored: DataVolume,
        hot_fraction: Fraction,
        ingestion: DataRate,
        preprocess_joules_per_byte: f64,
    ) -> DataPipeline {
        assert!(
            preprocess_joules_per_byte >= 0.0,
            "preprocessing energy must be non-negative"
        );
        DataPipeline {
            stored,
            hot_fraction,
            ingestion,
            preprocess_joules_per_byte,
        }
    }

    /// An RM1-scale pipeline: 1 EB stored (20 % hot), 3.2 TB/s ingestion,
    /// 200 nJ/byte preprocessing — calibrated so the data stage carries
    /// ≈31 % of the end-to-end RM1 energy (Fig 3b).
    pub fn rm1_scale() -> DataPipeline {
        DataPipeline::new(
            DataVolume::from_exabytes(1.0),
            Fraction::saturating(0.20),
            DataRate::from_gigabytes_per_sec(3200.0),
            200e-9,
        )
    }

    /// Stored volume.
    pub fn stored(&self) -> DataVolume {
        self.stored
    }

    /// Ingestion bandwidth.
    pub fn ingestion(&self) -> DataRate {
        self.ingestion
    }

    /// Continuous storage power (hot tier + cold tier).
    pub fn storage_power(&self) -> Power {
        let pb = self.stored.as_petabytes();
        let hot = pb * self.hot_fraction.value();
        let cold = pb - hot;
        StorageMedia::Ssd.power_per_pb() * hot + StorageMedia::Hdd.power_per_pb() * cold
    }

    /// Continuous preprocessing power at the configured ingestion rate.
    pub fn preprocessing_power(&self) -> Power {
        Power::from_watts(self.ingestion.as_bytes_per_sec() * self.preprocess_joules_per_byte)
    }

    /// Total continuous pipeline power.
    pub fn total_power(&self) -> Power {
        self.storage_power() + self.preprocessing_power()
    }

    /// Energy over a window.
    pub fn energy_over(&self, window: TimeSpan) -> Energy {
        self.total_power() * window
    }

    /// Embodied carbon of the storage deployment.
    pub fn storage_embodied(&self) -> Co2e {
        let pb = self.stored.as_petabytes();
        let hot = pb * self.hot_fraction.value();
        let cold = pb - hot;
        StorageMedia::Ssd.embodied_per_pb() * hot + StorageMedia::Hdd.embodied_per_pb() * cold
    }

    /// The data stage's share of an end-to-end pipeline whose
    /// experimentation+training and inference stages draw the given powers.
    pub fn share_of_pipeline(&self, training: Power, inference: Power) -> Fraction {
        let total = self.total_power() + training + inference;
        if total.is_zero() {
            return Fraction::ZERO;
        }
        Fraction::saturating(self.total_power() / total)
    }

    /// Scales the pipeline along the Fig 2b growth trends: data volume by
    /// `data_factor` and ingestion bandwidth by `bandwidth_factor`.
    pub fn grown(&self, data_factor: f64, bandwidth_factor: f64) -> DataPipeline {
        DataPipeline {
            stored: self.stored * data_factor,
            hot_fraction: self.hot_fraction,
            ingestion: self.ingestion * bandwidth_factor,
            preprocess_joules_per_byte: self.preprocess_joules_per_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rm1_scale_data_share_is_about_31_percent() {
        // Fig 3b: Data : Exp+Train : Inference = 31 : 29 : 40. With the data
        // stage modeled bottom-up, back out the published ratios for the
        // other two stages and confirm the share lands on 31%.
        let pipeline = DataPipeline::rm1_scale();
        let data = pipeline.total_power();
        let training = data * (29.0 / 31.0);
        let inference = data * (40.0 / 31.0);
        let share = pipeline.share_of_pipeline(training, inference);
        assert!((share.value() - 0.31).abs() < 0.005, "share {share}");
    }

    #[test]
    fn rm1_pipeline_power_is_megawatt_scale() {
        let p = DataPipeline::rm1_scale();
        let mw = p.total_power().as_megawatts();
        assert!(mw > 0.5 && mw < 5.0, "pipeline power {mw} MW");
        // Preprocessing and storage both matter.
        assert!(p.preprocessing_power() > p.storage_power() * 0.3);
        assert!(p.storage_power() > p.preprocessing_power() * 0.3);
    }

    #[test]
    fn ssd_and_hdd_profiles_differ_as_published() {
        // Flash: far higher embodied per byte, lower operating power.
        assert!(StorageMedia::Ssd.embodied_per_pb() > StorageMedia::Hdd.embodied_per_pb() * 5.0);
        assert!(StorageMedia::Ssd.power_per_pb() < StorageMedia::Hdd.power_per_pb());
    }

    #[test]
    fn growth_raises_power_superlinearly_in_bandwidth() {
        // Fig 2b: data 2.4x but bandwidth 3.2x — preprocessing power grows
        // faster than storage power.
        let base = DataPipeline::rm1_scale();
        let grown = base.grown(2.4, 3.2);
        let storage_ratio = grown.storage_power() / base.storage_power();
        let prep_ratio = grown.preprocessing_power() / base.preprocessing_power();
        assert!((storage_ratio - 2.4).abs() < 1e-9);
        assert!((prep_ratio - 3.2).abs() < 1e-9);
        assert!(grown.total_power() / base.total_power() > 2.4);
    }

    #[test]
    fn hot_tier_shifts_power_and_embodied() {
        let cold_only = DataPipeline::new(
            DataVolume::from_petabytes(100.0),
            Fraction::ZERO,
            DataRate::from_gigabytes_per_sec(1.0),
            0.0,
        );
        let hot_only = DataPipeline::new(
            DataVolume::from_petabytes(100.0),
            Fraction::ONE,
            DataRate::from_gigabytes_per_sec(1.0),
            0.0,
        );
        assert!(hot_only.storage_power() < cold_only.storage_power());
        assert!(hot_only.storage_embodied() > cold_only.storage_embodied());
    }

    #[test]
    fn energy_over_window() {
        let p = DataPipeline::new(
            DataVolume::from_petabytes(1.0),
            Fraction::ZERO,
            DataRate::from_gigabytes_per_sec(1.0),
            0.0,
        );
        // 900 W for 1 day.
        let e = p.energy_over(TimeSpan::from_days(1.0));
        assert!((e.as_kilowatt_hours() - 21.6).abs() < 1e-9);
    }

    #[test]
    fn zero_pipeline_share_is_zero() {
        let p = DataPipeline::new(
            DataVolume::from_bytes(0.0),
            Fraction::ZERO,
            DataRate::from_bytes_per_sec(0.0),
            0.0,
        );
        assert_eq!(
            p.share_of_pipeline(Power::ZERO, Power::ZERO),
            Fraction::ZERO
        );
    }
}
