//! Experimentation campaigns (§II-A, §IV-B).
//!
//! "During Experimentation, the researchers design, implement and evaluate the
//! quality of proposed algorithms ... A large collection of diverse ML ideas
//! are explored simultaneously at-scale." A campaign explores `ideas` in
//! parallel; each idea spawns several research-scale training workflows; one
//! winner graduates to production training. The campaign model quantifies the
//! §IV-B levers: early stopping of under-performing workflows and
//! sample-efficient search both shrink the experimentation slice of the
//! 10:20:70 capacity split.

use rand::Rng;
use serde::{Deserialize, Serialize};

use sustain_core::units::{Energy, Power, TimeSpan};

use crate::training::{JobClass, JobGenerator};

/// Configuration of an experimentation campaign.
///
/// ```rust
/// use sustain_workload::experimentation::Campaign;
///
/// let campaign = Campaign::new(10, 5).with_early_stopping(0.25, 0.25);
/// assert_eq!(campaign.total_workflows(), 50);
/// assert!((campaign.early_stop_cost_factor() - 0.4375).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Ideas explored in parallel.
    pub ideas: u32,
    /// Research workflows per idea.
    pub workflows_per_idea: u32,
    /// Fraction of the budget at which under-performers are stopped
    /// (1.0 = no early stopping).
    pub early_stop_checkpoint: f64,
    /// Fraction of workflows that survive the checkpoint.
    pub early_stop_survivors: f64,
}

impl Campaign {
    /// A campaign without early stopping.
    ///
    /// # Panics
    ///
    /// Panics if `ideas` or `workflows_per_idea` is zero.
    pub fn new(ideas: u32, workflows_per_idea: u32) -> Campaign {
        assert!(ideas > 0, "campaign needs at least one idea");
        assert!(workflows_per_idea > 0, "ideas need at least one workflow");
        Campaign {
            ideas,
            workflows_per_idea,
            early_stop_checkpoint: 1.0,
            early_stop_survivors: 1.0,
        }
    }

    /// Enables early stopping: evaluate at `checkpoint` of the budget, keep
    /// `survivors` of the workflows.
    ///
    /// # Panics
    ///
    /// Panics unless both fractions lie in `(0, 1]`.
    pub fn with_early_stopping(mut self, checkpoint: f64, survivors: f64) -> Campaign {
        assert!((0.0..=1.0).contains(&checkpoint) && checkpoint > 0.0);
        assert!((0.0..=1.0).contains(&survivors) && survivors > 0.0);
        self.early_stop_checkpoint = checkpoint;
        self.early_stop_survivors = survivors;
        self
    }

    /// Total workflows launched.
    pub fn total_workflows(&self) -> u64 {
        self.ideas as u64 * self.workflows_per_idea as u64
    }

    /// Simulates the campaign: every workflow's full-budget GPU-days are
    /// drawn from the calibrated research distribution; non-survivors only
    /// burn up to the checkpoint. Returns the total GPU-days consumed.
    pub fn simulate_gpu_days<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let generator = JobGenerator::calibrated(JobClass::Research)
            // lint:allow(panic-discipline) calibrated() only errs on invalid user input
            .expect("research calibration constants are valid");
        let mut total = 0.0;
        for _ in 0..self.total_workflows() {
            let full = generator.sample(rng).gpu_days();
            let survives = rng.gen::<f64>() < self.early_stop_survivors;
            total += if survives {
                full
            } else {
                full * self.early_stop_checkpoint
            };
        }
        total
    }

    /// The campaign's expected energy at a mean per-GPU power.
    pub fn expected_energy<R: Rng + ?Sized>(&self, rng: &mut R, mean_gpu_power: Power) -> Energy {
        mean_gpu_power * TimeSpan::from_days(self.simulate_gpu_days(rng))
    }

    /// The analytic cost factor of early stopping relative to running every
    /// workflow to completion.
    pub fn early_stop_cost_factor(&self) -> f64 {
        self.early_stop_survivors + (1.0 - self.early_stop_survivors) * self.early_stop_checkpoint
    }
}

/// The experimentation : production-training cost ratio — the §II-A coupling:
/// a campaign's GPU-days versus the one graduated production training run.
pub fn exploration_to_training_ratio<R: Rng + ?Sized>(rng: &mut R, campaign: &Campaign) -> f64 {
    let production = JobGenerator::calibrated(JobClass::Production)
        // lint:allow(panic-discipline) calibrated() only errs on invalid user input
        .expect("production calibration constants are valid");
    let exploration = campaign.simulate_gpu_days(rng);
    let training = production.sample(rng).gpu_days();
    exploration / training
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn campaign_counts() {
        let c = Campaign::new(20, 10);
        assert_eq!(c.total_workflows(), 200);
        assert_eq!(c.early_stop_cost_factor(), 1.0);
    }

    #[test]
    fn early_stopping_cuts_gpu_days_by_the_analytic_factor() {
        let base = Campaign::new(50, 20);
        let stopped = base.with_early_stopping(0.25, 0.25);
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let full = base.simulate_gpu_days(&mut rng_a);
        let cut = stopped.simulate_gpu_days(&mut rng_b);
        let expected = stopped.early_stop_cost_factor();
        let measured = cut / full;
        assert!(
            (measured - expected).abs() < 0.05,
            "measured {measured} vs analytic {expected}"
        );
    }

    #[test]
    fn campaign_energy_scales_with_power() {
        let c = Campaign::new(5, 4);
        let e1 = c.expected_energy(&mut StdRng::seed_from_u64(2), Power::from_watts(300.0));
        let e2 = c.expected_energy(&mut StdRng::seed_from_u64(2), Power::from_watts(600.0));
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn large_campaigns_dwarf_single_production_runs() {
        // The 10:20 experimentation:training capacity split only balances
        // because each production model amortizes a large exploration pool.
        let c = Campaign::new(100, 20);
        let ratio = exploration_to_training_ratio(&mut StdRng::seed_from_u64(3), &c);
        assert!(ratio > 50.0, "exploration/training ratio {ratio}");
    }

    #[test]
    fn early_stopping_preserves_workflow_count() {
        let c = Campaign::new(10, 10).with_early_stopping(0.25, 0.5);
        assert_eq!(c.total_workflows(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one idea")]
    fn rejects_empty_campaign() {
        let _ = Campaign::new(0, 1);
    }
}
