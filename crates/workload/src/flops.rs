//! FLOPs estimators and the FLOPs→energy bridge.
//!
//! The standard approximations: a dense transformer forward pass costs
//! ≈ `2 × parameters` FLOPs per token, and training (forward + backward +
//! update) ≈ `6 × parameters` per token. Combined with an accelerator's peak
//! throughput and model FLOPs utilization (MFU), this turns model/data scale
//! directly into runtime and energy — the bridge every scaling analysis in the
//! paper rests on.

use serde::{Deserialize, Serialize};

use sustain_core::units::{Energy, Fraction, Power, TimeSpan};
use sustain_telemetry::device::{DeviceSpec, PowerModel};

/// FLOPs for one forward pass of a dense model over `tokens` tokens.
pub fn inference_flops(parameters: u64, tokens: u64) -> f64 {
    2.0 * parameters as f64 * tokens as f64
}

/// FLOPs for training a dense model over `tokens` tokens (fwd + bwd + update).
pub fn training_flops(parameters: u64, tokens: u64) -> f64 {
    6.0 * parameters as f64 * tokens as f64
}

/// FLOPs for one forward pass of an MLP with the given layer widths over a
/// batch (2 FLOPs per MAC).
///
/// # Panics
///
/// Panics if fewer than two layer widths are given.
pub fn mlp_flops(layer_widths: &[u64], batch: u64) -> f64 {
    assert!(
        layer_widths.len() >= 2,
        "an MLP needs at least input and output widths"
    );
    let macs: f64 = layer_widths
        .iter()
        .zip(layer_widths.iter().skip(1))
        .map(|(&fan_in, &fan_out)| fan_in as f64 * fan_out as f64)
        .sum();
    2.0 * macs * batch as f64
}

/// Sparsely-activated (mixture-of-experts) training FLOPs: only
/// `active_fraction` of parameters participate per token — how a 1.5 T
/// Switch Transformer trains with less energy than a 175 B dense GPT-3.
pub fn sparse_training_flops(parameters: u64, tokens: u64, active_fraction: Fraction) -> f64 {
    training_flops(parameters, tokens) * active_fraction.value()
}

/// An accelerator's compute throughput profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceThroughput {
    spec: DeviceSpec,
    peak_flops_per_sec: f64,
}

impl DeviceThroughput {
    /// Creates a throughput profile.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `peak_flops_per_sec` is not positive.
    pub fn new(spec: DeviceSpec, peak_flops_per_sec: f64) -> DeviceThroughput {
        debug_assert!(peak_flops_per_sec > 0.0);
        DeviceThroughput {
            spec,
            peak_flops_per_sec,
        }
    }

    /// Published mixed-precision peak throughput for a device spec, where
    /// known (V100 125 TFLOP/s, A100 312 TFLOP/s, P100 21.2 TFLOP/s,
    /// TPUv3 123 TFLOP/s per chip). Returns `None` for non-accelerators.
    pub fn for_spec(spec: DeviceSpec) -> Option<DeviceThroughput> {
        let tflops = match spec {
            DeviceSpec::V100 => 125.0,
            DeviceSpec::A100 => 312.0,
            DeviceSpec::P100 => 21.2,
            DeviceSpec::TpuV3 => 123.0,
            _ => return None,
        };
        Some(DeviceThroughput::new(spec, tflops * 1e12))
    }

    /// The device spec.
    pub fn spec(&self) -> DeviceSpec {
        self.spec
    }

    /// Peak FLOP/s.
    pub fn peak_flops_per_sec(&self) -> f64 {
        self.peak_flops_per_sec
    }

    /// Achieved FLOP/s at a model-FLOPs-utilization.
    pub fn achieved_flops_per_sec(&self, mfu: Fraction) -> f64 {
        self.peak_flops_per_sec * mfu.value()
    }

    /// Wall-clock time to execute `flops` at the given MFU on one device.
    ///
    /// # Panics
    ///
    /// Panics if `mfu` is zero.
    pub fn time_for(&self, flops: f64, mfu: Fraction) -> TimeSpan {
        assert!(mfu.value() > 0.0, "mfu must be positive");
        TimeSpan::from_secs(flops / self.achieved_flops_per_sec(mfu))
    }

    /// Device power while computing at the given MFU (the device's power
    /// model evaluated at that utilization).
    pub fn power_at(&self, mfu: Fraction) -> Power {
        self.spec.power_model().power(mfu)
    }

    /// Energy to execute `flops` at the given MFU on one device.
    ///
    /// # Panics
    ///
    /// Panics if `mfu` is zero.
    pub fn energy_for(&self, flops: f64, mfu: Fraction) -> Energy {
        self.power_at(mfu) * self.time_for(flops, mfu)
    }

    /// Energy efficiency (FLOPs per joule) at the given MFU.
    ///
    /// # Panics
    ///
    /// Panics if `mfu` is zero.
    pub fn flops_per_joule(&self, mfu: Fraction) -> f64 {
        self.achieved_flops_per_sec(mfu) / self.power_at(mfu).as_watts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half() -> Fraction {
        Fraction::new(0.5).unwrap()
    }

    #[test]
    fn dense_flops_formulas() {
        assert_eq!(inference_flops(1_000, 10), 20_000.0);
        assert_eq!(training_flops(1_000, 10), 60_000.0);
        // Training is 3× inference.
        assert_eq!(training_flops(7, 13) / inference_flops(7, 13), 3.0);
    }

    #[test]
    fn mlp_flops_formula() {
        // 4→8→2: (4*8 + 8*2) MACs = 48, ×2 ×batch 10 = 960.
        assert_eq!(mlp_flops(&[4, 8, 2], 10), 960.0);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_rejects_single_layer() {
        let _ = mlp_flops(&[4], 1);
    }

    #[test]
    fn sparse_models_cost_less_per_token() {
        // A 1.5T MoE at 5% activation trains cheaper per token than 175B dense.
        let switch = sparse_training_flops(1_500_000_000_000, 1, Fraction::new(0.05).unwrap());
        let gpt3 = training_flops(175_000_000_000, 1);
        assert!(switch < gpt3);
    }

    #[test]
    fn throughput_presets_exist_for_accelerators() {
        for spec in [
            DeviceSpec::V100,
            DeviceSpec::A100,
            DeviceSpec::P100,
            DeviceSpec::TpuV3,
        ] {
            let t = DeviceThroughput::for_spec(spec).unwrap();
            assert!(t.peak_flops_per_sec() > 1e13);
        }
        assert!(DeviceThroughput::for_spec(DeviceSpec::Smartphone).is_none());
    }

    #[test]
    fn time_scales_inversely_with_mfu() {
        let t = DeviceThroughput::for_spec(DeviceSpec::V100).unwrap();
        let flops = 1e18;
        let slow = t.time_for(flops, Fraction::new(0.25).unwrap());
        let fast = t.time_for(flops, half());
        assert!((slow.as_secs() / fast.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn higher_mfu_is_more_energy_efficient() {
        // Higher utilization amortizes idle power: more FLOPs per joule.
        let t = DeviceThroughput::for_spec(DeviceSpec::A100).unwrap();
        let lo = t.flops_per_joule(Fraction::new(0.3).unwrap());
        let hi = t.flops_per_joule(Fraction::new(0.9).unwrap());
        assert!(hi > lo, "hi {hi} should beat lo {lo}");
    }

    #[test]
    fn a100_beats_v100_on_efficiency() {
        let v = DeviceThroughput::for_spec(DeviceSpec::V100).unwrap();
        let a = DeviceThroughput::for_spec(DeviceSpec::A100).unwrap();
        assert!(a.flops_per_joule(half()) > v.flops_per_joule(half()));
    }

    #[test]
    fn energy_for_is_power_times_time() {
        let t = DeviceThroughput::for_spec(DeviceSpec::V100).unwrap();
        let flops = 1e17;
        let e = t.energy_for(flops, half());
        let manual = t.power_at(half()) * t.time_for(flops, half());
        assert!((e.as_joules() - manual.as_joules()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "mfu must be positive")]
    fn zero_mfu_rejected() {
        let t = DeviceThroughput::for_spec(DeviceSpec::V100).unwrap();
        let _ = t.time_for(1e12, Fraction::ZERO);
    }
}
