//! The publication-growth model behind Figure 1.
//!
//! Figure 1 plots the cumulative number of arXiv papers per discipline and
//! shows machine learning's growth exceeding other sciences. We model each
//! discipline's *monthly* submission count as an exponential and accumulate —
//! the same construction the figure uses ("based on the monthly count").

use serde::{Deserialize, Serialize};
use std::fmt;

/// A scientific discipline tracked in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Discipline {
    /// Machine learning (cs.LG + stat.ML).
    MachineLearning,
    /// Condensed-matter physics.
    CondensedMatter,
    /// Astrophysics.
    Astrophysics,
    /// High-energy physics.
    HighEnergyPhysics,
    /// Mathematics.
    Mathematics,
    /// Quantitative biology.
    QuantitativeBiology,
}

impl Discipline {
    /// All disciplines, ML first.
    pub const ALL: [Discipline; 6] = [
        Discipline::MachineLearning,
        Discipline::CondensedMatter,
        Discipline::Astrophysics,
        Discipline::HighEnergyPhysics,
        Discipline::Mathematics,
        Discipline::QuantitativeBiology,
    ];

    /// Monthly submissions at the model's epoch (papers/month), loosely
    /// matching arXiv category volumes circa 2011.
    pub fn base_monthly(&self) -> f64 {
        match self {
            Discipline::MachineLearning => 120.0,
            Discipline::CondensedMatter => 1100.0,
            Discipline::Astrophysics => 1000.0,
            Discipline::HighEnergyPhysics => 900.0,
            Discipline::Mathematics => 1600.0,
            Discipline::QuantitativeBiology => 140.0,
        }
    }

    /// Monthly growth rate. ML's ~3 %/month (doubling ≈ every 2 years)
    /// dwarfs the mature disciplines' ~0.3–0.6 %.
    pub fn monthly_growth(&self) -> f64 {
        match self {
            Discipline::MachineLearning => 0.030,
            Discipline::CondensedMatter => 0.003,
            Discipline::Astrophysics => 0.003,
            Discipline::HighEnergyPhysics => 0.002,
            Discipline::Mathematics => 0.005,
            Discipline::QuantitativeBiology => 0.006,
        }
    }
}

impl fmt::Display for Discipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Discipline::MachineLearning => "machine-learning",
            Discipline::CondensedMatter => "condensed-matter",
            Discipline::Astrophysics => "astrophysics",
            Discipline::HighEnergyPhysics => "high-energy-physics",
            Discipline::Mathematics => "mathematics",
            Discipline::QuantitativeBiology => "quantitative-biology",
        };
        f.write_str(name)
    }
}

/// Cumulative publication counts for one discipline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PublicationGrowth {
    discipline: Discipline,
}

impl PublicationGrowth {
    /// Creates the model for a discipline.
    pub fn new(discipline: Discipline) -> PublicationGrowth {
        PublicationGrowth { discipline }
    }

    /// The discipline.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Monthly submissions `months` after the epoch.
    pub fn monthly_at(&self, months: u32) -> f64 {
        self.discipline.base_monthly()
            * (1.0 + self.discipline.monthly_growth()).powi(months as i32)
    }

    /// Cumulative submissions from the epoch through month `months` inclusive.
    pub fn cumulative_at(&self, months: u32) -> f64 {
        // Geometric series sum: b · ((1+g)^(m+1) − 1) / g.
        let g = self.discipline.monthly_growth();
        let b = self.discipline.base_monthly();
        if sustain_core::units::approx_eq(g, 0.0) {
            return b * (months as f64 + 1.0);
        }
        b * ((1.0 + g).powi(months as i32 + 1) - 1.0) / g
    }

    /// The full cumulative series over `months` months.
    pub fn series(&self, months: u32) -> Vec<(u32, f64)> {
        (0..=months).map(|m| (m, self.cumulative_at(m))).collect()
    }
}

/// The month at which ML's cumulative count overtakes `other`'s, if within
/// `horizon_months`. ML starts far behind the mature disciplines (Fig 1's
/// crossing curves).
pub fn ml_crossover_month(other: Discipline, horizon_months: u32) -> Option<u32> {
    let ml = PublicationGrowth::new(Discipline::MachineLearning);
    let o = PublicationGrowth::new(other);
    (0..=horizon_months).find(|&m| ml.cumulative_at(m) > o.cumulative_at(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ml_growth_exceeds_all_other_disciplines() {
        for d in Discipline::ALL {
            if d != Discipline::MachineLearning {
                assert!(
                    Discipline::MachineLearning.monthly_growth() > d.monthly_growth(),
                    "{d} grows faster than ML"
                );
            }
        }
    }

    #[test]
    fn ml_starts_behind_but_overtakes() {
        // Fig 1's signature shape: ML's cumulative curve starts below the big
        // physics categories and crosses them within the plotted decade.
        let ml = PublicationGrowth::new(Discipline::MachineLearning);
        let cm = PublicationGrowth::new(Discipline::CondensedMatter);
        assert!(ml.cumulative_at(0) < cm.cumulative_at(0));
        let cross = ml_crossover_month(Discipline::CondensedMatter, 180)
            .expect("ML must overtake within 15 years");
        assert!(cross > 24, "crossover too early: month {cross}");
        assert!(ml.cumulative_at(cross) > cm.cumulative_at(cross));
    }

    #[test]
    fn cumulative_matches_naive_sum() {
        let g = PublicationGrowth::new(Discipline::MachineLearning);
        let naive: f64 = (0..=24).map(|m| g.monthly_at(m)).sum();
        assert!((g.cumulative_at(24) - naive).abs() / naive < 1e-9);
    }

    #[test]
    fn series_is_increasing() {
        let s = PublicationGrowth::new(Discipline::Mathematics).series(60);
        assert_eq!(s.len(), 61);
        for w in s.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn no_crossover_within_tiny_horizon() {
        assert!(ml_crossover_month(Discipline::CondensedMatter, 6).is_none());
    }

    #[test]
    fn ml_overtakes_quantitative_biology_quickly() {
        // q-bio starts at similar volume but grows 5× slower.
        let cross = ml_crossover_month(Discipline::QuantitativeBiology, 60).unwrap();
        assert!(cross < 24, "crossover month {cross}");
    }

    #[test]
    fn display() {
        assert_eq!(Discipline::MachineLearning.to_string(), "machine-learning");
    }
}
