//! Inference serving models (§II-A).
//!
//! Facebook's fleet serves *trillions of predictions per day*; for a deployed
//! model, total inference compute is expected to exceed its training compute.
//! [`InferenceService`] models one deployed model's serving load and energy;
//! [`ServingFleet`] aggregates services into fleet-level demand.

use serde::{Deserialize, Serialize};

use sustain_core::units::{Energy, TimeSpan};

/// One deployed model's serving profile.
///
/// ```rust
/// use sustain_workload::inference::InferenceService;
/// use sustain_core::units::Energy;
///
/// let svc = InferenceService::new("rm1", 2.0e12, Energy::from_joules(0.002));
/// assert!((svc.daily_energy().as_megawatt_hours() - 1.111).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceService {
    name: String,
    predictions_per_day: f64,
    energy_per_prediction: Energy,
}

impl InferenceService {
    /// Creates a service.
    ///
    /// # Panics
    ///
    /// Panics if `predictions_per_day` is negative or non-finite.
    pub fn new(
        name: impl Into<String>,
        predictions_per_day: f64,
        energy_per_prediction: Energy,
    ) -> InferenceService {
        assert!(
            predictions_per_day.is_finite() && predictions_per_day >= 0.0,
            "predictions_per_day must be non-negative"
        );
        InferenceService {
            name: name.into(),
            predictions_per_day,
            energy_per_prediction,
        }
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Daily prediction volume.
    pub fn predictions_per_day(&self) -> f64 {
        self.predictions_per_day
    }

    /// IT energy per prediction.
    pub fn energy_per_prediction(&self) -> Energy {
        self.energy_per_prediction
    }

    /// Mean queries per second.
    pub fn qps(&self) -> f64 {
        self.predictions_per_day / 86_400.0
    }

    /// IT energy per day.
    pub fn daily_energy(&self) -> Energy {
        self.energy_per_prediction * self.predictions_per_day
    }

    /// IT energy over an arbitrary horizon.
    pub fn energy_over(&self, horizon: TimeSpan) -> Energy {
        self.daily_energy() * horizon.as_days()
    }

    /// Servers needed to sustain the mean load given per-server throughput.
    ///
    /// # Panics
    ///
    /// Panics if `per_server_qps` is not positive.
    pub fn servers_needed(&self, per_server_qps: f64) -> u64 {
        assert!(per_server_qps > 0.0, "per-server qps must be positive");
        (self.qps() / per_server_qps).ceil() as u64
    }

    /// Returns a copy with per-prediction energy scaled by `factor` —
    /// how optimization passes express efficiency gains.
    pub fn with_energy_scaled(&self, factor: f64) -> InferenceService {
        InferenceService {
            name: self.name.clone(),
            predictions_per_day: self.predictions_per_day,
            energy_per_prediction: self.energy_per_prediction * factor,
        }
    }

    /// Returns a copy with demand grown by `factor` (Jevons-paradox side).
    pub fn with_demand_scaled(&self, factor: f64) -> InferenceService {
        InferenceService {
            name: self.name.clone(),
            predictions_per_day: self.predictions_per_day * factor,
            energy_per_prediction: self.energy_per_prediction,
        }
    }
}

/// A collection of inference services.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServingFleet {
    services: Vec<InferenceService>,
}

impl ServingFleet {
    /// Creates an empty fleet.
    pub fn new() -> ServingFleet {
        ServingFleet::default()
    }

    /// Adds a service.
    pub fn add(&mut self, service: InferenceService) -> &mut ServingFleet {
        self.services.push(service);
        self
    }

    /// The services.
    pub fn services(&self) -> &[InferenceService] {
        &self.services
    }

    /// Total predictions per day across services.
    pub fn predictions_per_day(&self) -> f64 {
        self.services.iter().map(|s| s.predictions_per_day()).sum()
    }

    /// Total daily IT energy.
    pub fn daily_energy(&self) -> Energy {
        self.services.iter().map(|s| s.daily_energy()).sum()
    }

    /// A representative fleet shaped like the paper's description: the six
    /// production models together serving trillions of predictions per day.
    pub fn production_like() -> ServingFleet {
        let mut fleet = ServingFleet::new();
        // Per-prediction energies differ by model class: RM inference is
        // memory-bound and cheap per query; LM decoding is heavier.
        let [rm1, rm2, rm3, rm4, rm5] = crate::constants::RM_ENERGY_PER_PREDICTION_J;
        fleet.add(InferenceService::new(
            "LM",
            5.0e9,
            Energy::from_joules(crate::constants::LM_ENERGY_PER_PREDICTION_J),
        ));
        fleet.add(InferenceService::new(
            "RM1",
            8.0e11,
            Energy::from_joules(rm1),
        ));
        fleet.add(InferenceService::new(
            "RM2",
            1.1e12,
            Energy::from_joules(rm2),
        ));
        fleet.add(InferenceService::new(
            "RM3",
            6.0e11,
            Energy::from_joules(rm3),
        ));
        fleet.add(InferenceService::new(
            "RM4",
            7.5e11,
            Energy::from_joules(rm4),
        ));
        fleet.add(InferenceService::new(
            "RM5",
            5.5e11,
            Energy::from_joules(rm5),
        ));
        fleet
    }
}

impl FromIterator<InferenceService> for ServingFleet {
    fn from_iter<I: IntoIterator<Item = InferenceService>>(iter: I) -> ServingFleet {
        ServingFleet {
            services: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> InferenceService {
        InferenceService::new("rm", 8.64e9, Energy::from_joules(0.01))
    }

    #[test]
    fn qps_and_daily_energy() {
        let s = svc();
        assert!((s.qps() - 1.0e5).abs() < 1e-6);
        assert!((s.daily_energy().as_joules() - 8.64e7).abs() < 1.0);
        assert!((s.energy_over(TimeSpan::from_days(10.0)).as_joules() - 8.64e8).abs() < 10.0);
    }

    #[test]
    fn servers_needed_rounds_up() {
        let s = svc();
        assert_eq!(s.servers_needed(30_000.0), 4);
        assert_eq!(s.servers_needed(100_000.0), 1);
    }

    #[test]
    fn scaling_helpers() {
        let s = svc();
        let optimized = s.with_energy_scaled(0.5);
        assert_eq!(optimized.daily_energy(), s.daily_energy() * 0.5);
        let grown = s.with_demand_scaled(2.0);
        assert_eq!(grown.daily_energy(), s.daily_energy() * 2.0);
        assert_eq!(grown.name(), "rm");
    }

    #[test]
    fn production_fleet_serves_trillions_daily() {
        let fleet = ServingFleet::production_like();
        // Paper: "trillions of inference per day".
        assert!(fleet.predictions_per_day() > 1.0e12);
        assert_eq!(fleet.services().len(), 6);
        assert!(fleet.daily_energy() > Energy::ZERO);
    }

    #[test]
    fn inference_exceeds_training_compute_over_deployment() {
        // Paper: "total compute cycles for inference... expected to exceed the
        // corresponding training cycles". One RM's inference energy over a
        // 90-day deployment should exceed a large production training run.
        let fleet = ServingFleet::production_like();
        let rm1 = &fleet.services()[1];
        let deployment_energy = rm1.energy_over(TimeSpan::from_days(90.0));
        // A 125 GPU-day (p99) training run at 300 W mean:
        let training = sustain_core::units::Power::from_watts(300.0) * TimeSpan::from_days(125.0);
        assert!(deployment_energy > training);
    }

    #[test]
    fn fleet_collects_from_iterator() {
        let fleet: ServingFleet = vec![svc(), svc()].into_iter().collect();
        assert_eq!(fleet.services().len(), 2);
        assert!((fleet.predictions_per_day() - 2.0 * 8.64e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_volume() {
        let _ = InferenceService::new("bad", -1.0, Energy::ZERO);
    }
}
