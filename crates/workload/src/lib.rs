//! # sustain-workload
//!
//! ML workload models: everything the paper measures, as parametric Rust types.
//!
//! * [`models`] — descriptors for the paper's production models (LM, RM1–RM5)
//!   and the open-source comparison set (BERT-NAS, T5, Meena, GShard-600B,
//!   Switch Transformer, GPT-3) with published training footprints.
//! * [`flops`] — FLOPs estimators for transformers and MLPs, and the
//!   FLOPs→energy bridge used by the simulators.
//! * [`recsys`] — the DLRM structure: dense MLP + sparse embedding tables,
//!   memory footprints and bandwidth demands (§III-B).
//! * [`training`] — training-job distributions calibrated to the paper's
//!   published percentiles, and retraining cadences.
//! * [`inference`] — inference serving: predictions/day, per-prediction energy.
//! * [`scaling`] — model/data scaling laws: quality vs size (Fig 2a) and the
//!   normalized-entropy energy frontier (Fig 12).
//! * [`datagrowth`] — growth trends behind Fig 2b–d and Fig 8.
//! * [`growth`] — the arXiv publication-growth model behind Fig 1.
//! * [`phases`] — phase capacity/energy splits behind Fig 3.
//! * [`ssl`] — the supervised vs self-supervised training-effort trade-off
//!   (Appendix C).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod constants;
pub mod datagrowth;
pub mod datapipeline;
pub mod experimentation;
pub mod flops;
pub mod growth;
pub mod inference;
pub mod models;
pub mod phases;
pub mod recsys;
pub mod scaling;
pub mod ssl;
pub mod training;

pub use models::{MlModel, ModelKind, OssModel, ProductionModel};
