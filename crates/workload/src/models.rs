//! Model descriptors and the footprint registry behind Figure 4.
//!
//! Two families are modeled:
//!
//! * [`ProductionModel`] — the paper's six Facebook production models: **LM**
//!   (the Transformer-based universal language model) and **RM1–RM5** (deep
//!   learning recommendation and ranking models). The paper publishes only
//!   *relative* statements about their footprints; the absolute values here are
//!   synthesized to satisfy every published constraint simultaneously:
//!   - the fleet-average training footprint is ≈1.8× Meena's and ≈0.3× GPT-3's;
//!   - LM's footprint is inference-dominated (65 % inference / 35 % training);
//!   - each RM's footprint splits roughly evenly between training and inference;
//!   - recommendation models are online-trained, LM is not.
//!
//! * [`OssModel`] — the open-source comparison set with footprints as
//!   published by Patterson et al. (2021), which is also the paper's source.
//!   (The paper's text says "GPT-3 (750 billion parameters)"; the actual
//!   published GPT-3 size is 175 B, which is what we use.)

use serde::{Deserialize, Serialize};
use std::fmt;

use sustain_core::lifecycle::{Breakdown, MlPhase};
use sustain_core::units::{Co2e, Energy, Fraction};

/// Broad family of an ML model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ModelKind {
    /// Language / translation transformers.
    Language,
    /// Deep-learning recommendation and ranking models.
    Recommendation,
    /// Conversational agents.
    Conversational,
    /// Vision models.
    Vision,
    /// Speech models.
    Speech,
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModelKind::Language => "language",
            ModelKind::Recommendation => "recommendation",
            ModelKind::Conversational => "conversational",
            ModelKind::Vision => "vision",
            ModelKind::Speech => "speech",
        };
        f.write_str(name)
    }
}

/// A model descriptor: identity plus scale.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MlModel {
    name: String,
    kind: ModelKind,
    parameters: u64,
}

impl MlModel {
    /// Creates a descriptor.
    pub fn new(name: impl Into<String>, kind: ModelKind, parameters: u64) -> MlModel {
        MlModel {
            name: name.into(),
            kind,
            parameters,
        }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The model family.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of trainable parameters.
    pub fn parameters(&self) -> u64 {
        self.parameters
    }
}

impl fmt::Display for MlModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.1}B params)",
            self.name,
            self.parameters as f64 / 1e9
        )
    }
}

/// The open-source large-scale models of Figure 4, with training energy and
/// operational CO₂e as published by Patterson et al. (2021).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OssModel {
    /// The Evolved-Transformer neural-architecture search (Strubell et al.'s
    /// grid-search estimate; the paper's "BERT-NAS" bar).
    BertNas,
    /// T5 (11 B parameters).
    T5,
    /// Meena, the conversational agent (2.6 B parameters).
    Meena,
    /// GShard-600B mixture-of-experts translation model.
    GShard600B,
    /// Switch Transformer (1.5 T parameters, sparsely activated).
    SwitchTransformer,
    /// GPT-3 (175 B parameters).
    Gpt3,
}

impl OssModel {
    /// All OSS models, in Figure 4 order.
    pub const ALL: [OssModel; 6] = [
        OssModel::BertNas,
        OssModel::T5,
        OssModel::Meena,
        OssModel::GShard600B,
        OssModel::SwitchTransformer,
        OssModel::Gpt3,
    ];

    /// The descriptor (name, kind, parameter count).
    pub fn model(&self) -> MlModel {
        match self {
            OssModel::BertNas => MlModel::new("BERT-NAS", ModelKind::Language, 110_000_000),
            OssModel::T5 => MlModel::new("T5", ModelKind::Language, 11_000_000_000),
            OssModel::Meena => MlModel::new("Meena", ModelKind::Conversational, 2_600_000_000),
            OssModel::GShard600B => {
                MlModel::new("GShard-600B", ModelKind::Language, 600_000_000_000)
            }
            OssModel::SwitchTransformer => {
                MlModel::new("Switch Transformer", ModelKind::Language, 1_500_000_000_000)
            }
            OssModel::Gpt3 => MlModel::new("GPT-3", ModelKind::Language, 175_000_000_000),
        }
    }

    /// Published training energy.
    pub fn training_energy(&self) -> Energy {
        let mwh = match self {
            OssModel::BertNas => 325.8,
            OssModel::T5 => 85.7,
            OssModel::Meena => 232.0,
            OssModel::GShard600B => 24.1,
            OssModel::SwitchTransformer => 179.0,
            OssModel::Gpt3 => 1287.0,
        };
        Energy::from_megawatt_hours(mwh)
    }

    /// Published operational training CO₂e (location-based).
    pub fn training_co2(&self) -> Co2e {
        let tonnes = match self {
            OssModel::BertNas => 284.0,
            OssModel::T5 => 46.7,
            OssModel::Meena => 96.4,
            OssModel::GShard600B => 4.3,
            OssModel::SwitchTransformer => 59.1,
            OssModel::Gpt3 => 552.1,
        };
        Co2e::from_tonnes(tonnes)
    }
}

impl fmt::Display for OssModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.model().name().to_string().as_str())
    }
}

/// The paper's six Facebook production models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProductionModel {
    /// Transformer-based universal language model (XLM-R-class translation).
    Lm,
    /// Recommendation/ranking model 1.
    Rm1,
    /// Recommendation/ranking model 2.
    Rm2,
    /// Recommendation/ranking model 3.
    Rm3,
    /// Recommendation/ranking model 4.
    Rm4,
    /// Recommendation/ranking model 5.
    Rm5,
}

impl ProductionModel {
    /// All production models, in Figure 4 order.
    pub const ALL: [ProductionModel; 6] = [
        ProductionModel::Lm,
        ProductionModel::Rm1,
        ProductionModel::Rm2,
        ProductionModel::Rm3,
        ProductionModel::Rm4,
        ProductionModel::Rm5,
    ];

    /// The recommendation models only.
    pub const RECOMMENDATION: [ProductionModel; 5] = [
        ProductionModel::Rm1,
        ProductionModel::Rm2,
        ProductionModel::Rm3,
        ProductionModel::Rm4,
        ProductionModel::Rm5,
    ];

    /// The descriptor. Parameter counts are synthetic but shaped like the
    /// paper's claims: RMs are embedding-dominated and far larger than LM,
    /// and footprint does **not** correlate with parameter count.
    pub fn model(&self) -> MlModel {
        match self {
            ProductionModel::Lm => MlModel::new("LM", ModelKind::Language, 550_000_000),
            ProductionModel::Rm1 => MlModel::new("RM1", ModelKind::Recommendation, 760_000_000_000),
            ProductionModel::Rm2 => {
                MlModel::new("RM2", ModelKind::Recommendation, 1_100_000_000_000)
            }
            ProductionModel::Rm3 => MlModel::new("RM3", ModelKind::Recommendation, 460_000_000_000),
            ProductionModel::Rm4 => MlModel::new("RM4", ModelKind::Recommendation, 305_000_000_000),
            ProductionModel::Rm5 => MlModel::new("RM5", ModelKind::Recommendation, 95_000_000_000),
        }
    }

    /// Whether the model is continuously online-trained (all RMs; not LM).
    pub fn is_online_trained(&self) -> bool {
        !matches!(self, ProductionModel::Lm)
    }

    /// Operational carbon by phase over one offline-training period
    /// (Figure 4's stacked bars), synthesized to satisfy the paper's
    /// published constraints (see module docs).
    pub fn footprint_by_phase(&self) -> Breakdown<Co2e> {
        let (offline, online, inference) = match self {
            ProductionModel::Lm => (120.0, 0.0, 222.9),
            ProductionModel::Rm1 => (80.0, 60.0, 140.0),
            ProductionModel::Rm2 => (130.0, 90.0, 220.0),
            ProductionModel::Rm3 => (100.0, 80.0, 180.0),
            ProductionModel::Rm4 => (120.0, 80.0, 200.0),
            ProductionModel::Rm5 => (90.0, 70.0, 160.0),
        };
        let mut b = Breakdown::zero();
        b[MlPhase::OfflineTraining] = Co2e::from_tonnes(offline);
        b[MlPhase::OnlineTraining] = Co2e::from_tonnes(online);
        b[MlPhase::Inference] = Co2e::from_tonnes(inference);
        b
    }

    /// Total training carbon (offline + online).
    pub fn training_co2(&self) -> Co2e {
        let b = self.footprint_by_phase();
        b[MlPhase::OfflineTraining] + b[MlPhase::OnlineTraining]
    }

    /// Inference carbon over the same period.
    pub fn inference_co2(&self) -> Co2e {
        self.footprint_by_phase()[MlPhase::Inference]
    }

    /// Total operational carbon.
    pub fn total_co2(&self) -> Co2e {
        self.footprint_by_phase().total()
    }

    /// Share of the operational footprint spent on training.
    pub fn training_share(&self) -> Fraction {
        Fraction::saturating(self.training_co2() / self.total_co2())
    }

    /// The Figure 5 overall footprint: operational (location-based) plus
    /// embodied carbon.
    ///
    /// The paper's measured aggregate relation is the calibration: across the
    /// large-scale ML tasks, "manufacturing carbon cost is roughly 50 % of
    /// the (location-based) operational carbon footprint" — the embodied side
    /// includes the training fleet, the inference fleet, and the storage/
    /// ingestion infrastructure behind each model, which is why it is far
    /// larger than a training-server-only amortization would suggest.
    pub fn overall_footprint(&self) -> sustain_core::footprint::CarbonFootprint {
        let operational = self.total_co2();
        sustain_core::footprint::CarbonFootprint::new(operational, operational * 0.5)
    }

    /// The Figure 5 carbon-free-energy scenario: operational carbon shrinks
    /// to the renewable life-cycle residual (~10 %), embodied is unchanged —
    /// manufacturing becomes the dominating source.
    pub fn overall_footprint_cfe(&self) -> sustain_core::footprint::CarbonFootprint {
        self.overall_footprint().scale_operational(0.10)
    }
}

impl fmt::Display for ProductionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.model().name().to_string().as_str())
    }
}

/// The fleet-average training carbon across the six production models —
/// the quantity the paper compares to Meena (1.8×) and GPT-3 (~0.3×).
pub fn fleet_average_training_co2() -> Co2e {
    let total: Co2e = ProductionModel::ALL.iter().map(|m| m.training_co2()).sum();
    total / ProductionModel::ALL.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_average_matches_paper_ratios() {
        let avg = fleet_average_training_co2();
        let vs_meena = avg / OssModel::Meena.training_co2();
        let vs_gpt3 = avg / OssModel::Gpt3.training_co2();
        assert!((vs_meena - 1.8).abs() < 0.1, "vs Meena {vs_meena}");
        assert!((vs_gpt3 - 0.3).abs() < 0.05, "vs GPT-3 {vs_gpt3}");
    }

    #[test]
    fn lm_is_inference_dominated() {
        // Paper: LM uses 65% inference / 35% training.
        let share = ProductionModel::Lm.training_share().value();
        assert!((share - 0.35).abs() < 0.01, "training share {share}");
        assert!(!ProductionModel::Lm.is_online_trained());
    }

    #[test]
    fn rms_split_roughly_evenly() {
        for rm in ProductionModel::RECOMMENDATION {
            let share = rm.training_share().value();
            assert!(
                (share - 0.5).abs() < 0.05,
                "{rm} training share {share} not ~50/50"
            );
            assert!(rm.is_online_trained());
            assert!(
                rm.footprint_by_phase()[MlPhase::OnlineTraining] > Co2e::ZERO,
                "{rm} should online-train"
            );
        }
    }

    #[test]
    fn footprint_does_not_correlate_with_parameters() {
        // Switch Transformer (1.5T) emits far less than GPT-3 (175B).
        assert!(
            OssModel::SwitchTransformer.model().parameters() > OssModel::Gpt3.model().parameters()
        );
        assert!(OssModel::SwitchTransformer.training_co2() < OssModel::Gpt3.training_co2());
        // And RM2 (largest production model) is not the largest emitter ratio-wise.
        let rm2 = ProductionModel::Rm2;
        let rm5 = ProductionModel::Rm5;
        let param_ratio = rm2.model().parameters() as f64 / rm5.model().parameters() as f64;
        let co2_ratio = rm2.total_co2() / rm5.total_co2();
        assert!(param_ratio > 5.0 && co2_ratio < 2.0);
    }

    #[test]
    fn oss_registry_is_complete_and_positive() {
        for m in OssModel::ALL {
            assert!(m.training_energy() > Energy::ZERO);
            assert!(m.training_co2() > Co2e::ZERO);
            assert!(m.model().parameters() > 0);
        }
        assert_eq!(OssModel::ALL.len(), 6);
    }

    #[test]
    fn gshard_is_the_cleanest_oss_run() {
        // TPUs on a clean grid: GShard's published footprint is the smallest.
        for m in OssModel::ALL {
            assert!(m.training_co2() >= OssModel::GShard600B.training_co2());
        }
    }

    #[test]
    fn production_footprints_are_consistent() {
        for m in ProductionModel::ALL {
            let b = m.footprint_by_phase();
            assert_eq!(m.total_co2(), b.total());
            assert_eq!(
                m.training_co2() + m.inference_co2(),
                m.total_co2(),
                "{m} phases must partition the total"
            );
            // No production model trains during data-processing/experimentation
            // in this per-model ledger (those are fleet-level, Fig 3).
            assert!(b[MlPhase::DataProcessing].is_zero());
            assert!(b[MlPhase::Experimentation].is_zero());
        }
    }

    #[test]
    fn fig5_overall_footprint_split() {
        // "the split between the embodied and (location-based) operational
        // carbon footprint is roughly 30% / 70%".
        for m in ProductionModel::ALL {
            let fp = m.overall_footprint();
            let share = fp.embodied_share().value();
            assert!(
                (share - 1.0 / 3.0).abs() < 0.01,
                "{m} embodied share {share}"
            );
        }
    }

    #[test]
    fn fig5_cfe_makes_embodied_dominant() {
        for m in ProductionModel::ALL {
            let fp = m.overall_footprint_cfe();
            assert!(
                fp.embodied_share().value() > 0.5,
                "{m} embodied must dominate under CFE"
            );
            assert_eq!(fp.embodied(), m.overall_footprint().embodied());
        }
    }

    #[test]
    fn display_and_descriptor() {
        assert_eq!(ProductionModel::Lm.to_string(), "LM");
        assert_eq!(OssModel::Gpt3.to_string(), "GPT-3");
        let d = OssModel::Gpt3.model();
        assert_eq!(d.kind(), ModelKind::Language);
        assert_eq!(d.parameters(), 175_000_000_000);
        assert!(d.to_string().contains("175.0B"));
        assert_eq!(ModelKind::Recommendation.to_string(), "recommendation");
    }
}
