//! Phase capacity and energy splits (Figure 3).
//!
//! Two published splits are encoded:
//!
//! * **Power capacity** across AI infrastructure is devoted **10:20:70** to
//!   Experimentation : Training : Inference (Fig 3a).
//! * **End-to-end energy** of RM1's pipeline splits **31:29:40** across
//!   Data : Experimentation+Training : Inference (Fig 3b) — data storage and
//!   ingestion is a first-class consumer, not an afterthought.

use serde::{Deserialize, Serialize};

use sustain_core::lifecycle::{Breakdown, MlPhase};
use sustain_core::units::{Energy, Fraction, Power};

/// The fleet-level power-capacity split of Figure 3a.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseCapacitySplit {
    experimentation: Fraction,
    training: Fraction,
    inference: Fraction,
}

impl PhaseCapacitySplit {
    /// The paper's 10:20:70 split.
    pub fn paper_default() -> PhaseCapacitySplit {
        PhaseCapacitySplit {
            experimentation: Fraction::saturating(0.10),
            training: Fraction::saturating(0.20),
            inference: Fraction::saturating(0.70),
        }
    }

    /// Creates a split from three shares.
    ///
    /// # Errors
    ///
    /// Returns [`sustain_core::Error::MixNotNormalized`] unless the shares sum
    /// to 1 within 1e-9.
    pub fn new(
        experimentation: Fraction,
        training: Fraction,
        inference: Fraction,
    ) -> sustain_core::Result<PhaseCapacitySplit> {
        let sum = experimentation.value() + training.value() + inference.value();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(sustain_core::Error::MixNotNormalized { sum });
        }
        Ok(PhaseCapacitySplit {
            experimentation,
            training,
            inference,
        })
    }

    /// Share for experimentation.
    pub fn experimentation(&self) -> Fraction {
        self.experimentation
    }

    /// Share for (offline + online) training.
    pub fn training(&self) -> Fraction {
        self.training
    }

    /// Share for inference.
    pub fn inference(&self) -> Fraction {
        self.inference
    }

    /// Splits a total AI power capacity across the three phases, returned as
    /// a per-phase breakdown (training is booked as offline training).
    pub fn allocate(&self, total: Power) -> Breakdown<Power> {
        let mut b = Breakdown::zero();
        b[MlPhase::Experimentation] = self.experimentation * total;
        b[MlPhase::OfflineTraining] = self.training * total;
        b[MlPhase::Inference] = self.inference * total;
        b
    }
}

/// The RM1 end-to-end pipeline energy split of Figure 3b.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineEnergySplit {
    data: Fraction,
    experimentation_training: Fraction,
    inference: Fraction,
}

impl PipelineEnergySplit {
    /// The paper's 31:29:40 split for RM1.
    pub fn rm1() -> PipelineEnergySplit {
        PipelineEnergySplit {
            data: Fraction::saturating(0.31),
            experimentation_training: Fraction::saturating(0.29),
            inference: Fraction::saturating(0.40),
        }
    }

    /// Share spent in data storage + ingestion.
    pub fn data(&self) -> Fraction {
        self.data
    }

    /// Share spent in experimentation + training.
    pub fn experimentation_training(&self) -> Fraction {
        self.experimentation_training
    }

    /// Share spent in inference.
    pub fn inference(&self) -> Fraction {
        self.inference
    }

    /// Splits a total pipeline energy across the stages (experimentation+
    /// training booked half/half between the two phases).
    pub fn allocate(&self, total: Energy) -> Breakdown<Energy> {
        let mut b = Breakdown::zero();
        b[MlPhase::DataProcessing] = self.data * total;
        let et = self.experimentation_training * total;
        b[MlPhase::Experimentation] = et * 0.5;
        b[MlPhase::OfflineTraining] = et * 0.5;
        b[MlPhase::Inference] = self.inference * total;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_split_is_10_20_70() {
        let s = PhaseCapacitySplit::paper_default();
        assert!((s.experimentation().value() - 0.10).abs() < 1e-12);
        assert!((s.training().value() - 0.20).abs() < 1e-12);
        assert!((s.inference().value() - 0.70).abs() < 1e-12);
    }

    #[test]
    fn capacity_allocation_partitions_total() {
        let total = Power::from_megawatts(100.0);
        let b = PhaseCapacitySplit::paper_default().allocate(total);
        assert!((b.total().as_megawatts() - 100.0).abs() < 1e-9);
        assert!((b[MlPhase::Inference].as_megawatts() - 70.0).abs() < 1e-9);
        // Inference capacity dominates: the paper's core serving claim.
        let (exp, train, inf) = b.coarse();
        assert!(inf > train && train > exp);
    }

    #[test]
    fn split_validation() {
        let ok = PhaseCapacitySplit::new(
            Fraction::saturating(0.2),
            Fraction::saturating(0.3),
            Fraction::saturating(0.5),
        );
        assert!(ok.is_ok());
        let bad = PhaseCapacitySplit::new(
            Fraction::saturating(0.2),
            Fraction::saturating(0.3),
            Fraction::saturating(0.4),
        );
        assert!(bad.is_err());
    }

    #[test]
    fn rm1_pipeline_split_is_31_29_40() {
        let s = PipelineEnergySplit::rm1();
        let total = Energy::from_megawatt_hours(100.0);
        let b = s.allocate(total);
        assert!((b.total().as_megawatt_hours() - 100.0).abs() < 1e-9);
        assert!((b[MlPhase::DataProcessing].as_megawatt_hours() - 31.0).abs() < 1e-9);
        assert!((b[MlPhase::Inference].as_megawatt_hours() - 40.0).abs() < 1e-9);
        // Data is a first-class consumer — comparable to training.
        assert!(s.data().value() > 0.25);
    }
}
