//! The deep-learning recommendation model (DLRM) structure (§III-B).
//!
//! A recommendation model has two sub-nets: a dense fully-connected network
//! (MLPs, compute-bound) and a sparse embedding network projecting hundreds of
//! high-dimensional categorical features to low-dimensional vectors. The
//! embedding tables easily contribute **over 95 % of total model size**, and
//! embedding lookups dominate inference time for many ranking use cases —
//! which is why the paper's RM optimizations (quantization, caching) all
//! target the memory system.

use serde::{Deserialize, Serialize};

use sustain_core::units::{DataRate, DataVolume, Fraction, TimeSpan};

use crate::flops::mlp_flops;

/// One sparse embedding table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EmbeddingTable {
    rows: u64,
    dim: u32,
    bytes_per_element: u32,
    /// Average lookups (pooling factor) per inference.
    lookups_per_query: u32,
}

impl EmbeddingTable {
    /// Creates a table.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any dimension is zero.
    pub fn new(
        rows: u64,
        dim: u32,
        bytes_per_element: u32,
        lookups_per_query: u32,
    ) -> EmbeddingTable {
        debug_assert!(rows > 0 && dim > 0 && bytes_per_element > 0);
        EmbeddingTable {
            rows,
            dim,
            bytes_per_element,
            lookups_per_query,
        }
    }

    /// Number of rows (hash-bucket cardinality).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Bytes per element (4 = fp32, 2 = fp16, 1 = int8).
    pub fn bytes_per_element(&self) -> u32 {
        self.bytes_per_element
    }

    /// Average lookups per inference query.
    pub fn lookups_per_query(&self) -> u32 {
        self.lookups_per_query
    }

    /// Storage size of the table.
    pub fn size(&self) -> DataVolume {
        DataVolume::from_bytes(self.rows as f64 * self.dim as f64 * self.bytes_per_element as f64)
    }

    /// Bytes read from this table per inference query.
    pub fn bytes_per_query(&self) -> DataVolume {
        DataVolume::from_bytes(
            self.lookups_per_query as f64 * self.dim as f64 * self.bytes_per_element as f64,
        )
    }

    /// A copy re-encoded at a different element width (quantization).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `bytes` is zero.
    pub fn with_element_bytes(&self, bytes: u32) -> EmbeddingTable {
        debug_assert!(bytes > 0);
        EmbeddingTable {
            bytes_per_element: bytes,
            ..*self
        }
    }
}

/// A DLRM configuration: dense MLPs plus sparse embedding tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DlrmConfig {
    bottom_mlp: Vec<u64>,
    top_mlp: Vec<u64>,
    tables: Vec<EmbeddingTable>,
    dense_bytes_per_param: u32,
}

impl DlrmConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if either MLP has fewer than two layer widths.
    pub fn new(bottom_mlp: Vec<u64>, top_mlp: Vec<u64>, tables: Vec<EmbeddingTable>) -> DlrmConfig {
        assert!(
            bottom_mlp.len() >= 2 && top_mlp.len() >= 2,
            "MLPs need ≥2 widths"
        );
        DlrmConfig {
            bottom_mlp,
            top_mlp,
            tables,
            dense_bytes_per_param: 4,
        }
    }

    /// A representative production-scale RM: hundreds of embedding tables with
    /// tens of millions of rows each, and comparatively tiny MLPs.
    pub fn production_scale() -> DlrmConfig {
        let tables = (0..200)
            .map(|i| {
                // Table cardinalities spread over two orders of magnitude.
                let rows = 1_000_000 * (1 + (i % 40) as u64);
                EmbeddingTable::new(rows, 64, 4, 20)
            })
            .collect();
        DlrmConfig::new(vec![512, 512, 256, 64], vec![512, 384, 256, 1], tables)
    }

    /// The embedding tables.
    pub fn tables(&self) -> &[EmbeddingTable] {
        &self.tables
    }

    /// Mutable access for optimization passes (e.g. per-table quantization).
    pub fn tables_mut(&mut self) -> &mut Vec<EmbeddingTable> {
        &mut self.tables
    }

    /// Dense (MLP) parameter count.
    pub fn dense_parameters(&self) -> u64 {
        let count = |widths: &[u64]| -> u64 {
            widths
                .iter()
                .zip(widths.iter().skip(1))
                .map(|(&fan_in, &fan_out)| fan_in * fan_out + fan_out)
                .sum()
        };
        count(&self.bottom_mlp) + count(&self.top_mlp)
    }

    /// Sparse (embedding) parameter count.
    pub fn embedding_parameters(&self) -> u64 {
        self.tables.iter().map(|t| t.rows() * t.dim() as u64).sum()
    }

    /// Total parameter count.
    pub fn parameters(&self) -> u64 {
        self.dense_parameters() + self.embedding_parameters()
    }

    /// Dense sub-net storage size.
    pub fn dense_size(&self) -> DataVolume {
        DataVolume::from_bytes(self.dense_parameters() as f64 * self.dense_bytes_per_param as f64)
    }

    /// Embedding storage size.
    pub fn embedding_size(&self) -> DataVolume {
        self.tables.iter().map(|t| t.size()).sum()
    }

    /// Total model size.
    pub fn model_size(&self) -> DataVolume {
        self.dense_size() + self.embedding_size()
    }

    /// Share of model size in the embedding tables (the paper: > 95 %).
    pub fn embedding_share(&self) -> Fraction {
        Fraction::saturating(self.embedding_size() / self.model_size())
    }

    /// Dense FLOPs per inference query.
    pub fn flops_per_query(&self) -> f64 {
        mlp_flops(&self.bottom_mlp, 1) + mlp_flops(&self.top_mlp, 1)
    }

    /// Embedding bytes fetched per inference query — the memory-bandwidth
    /// demand that dominates RM inference.
    pub fn bytes_per_query(&self) -> DataVolume {
        self.tables.iter().map(|t| t.bytes_per_query()).sum()
    }

    /// Memory bandwidth needed to sustain `qps` queries per second.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not positive.
    pub fn bandwidth_at(&self, qps: f64) -> DataRate {
        assert!(qps > 0.0, "qps must be positive");
        self.bytes_per_query() * qps / TimeSpan::from_secs(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes() {
        let t = EmbeddingTable::new(1_000_000, 64, 4, 20);
        assert!((t.size().as_gigabytes() - 0.256).abs() < 1e-9);
        assert_eq!(t.bytes_per_query().as_bytes(), 20.0 * 64.0 * 4.0);
    }

    #[test]
    fn quantization_halves_table_size() {
        let t = EmbeddingTable::new(1_000_000, 64, 4, 20);
        let q = t.with_element_bytes(2);
        assert!((q.size() / t.size() - 0.5).abs() < 1e-12);
        assert!((q.bytes_per_query() / t.bytes_per_query() - 0.5).abs() < 1e-12);
        assert_eq!(q.rows(), t.rows());
        assert_eq!(q.dim(), t.dim());
    }

    #[test]
    fn production_rm_is_embedding_dominated() {
        let rm = DlrmConfig::production_scale();
        // Paper: embeddings "easily contribute over 95% of the total model size".
        assert!(
            rm.embedding_share().value() > 0.95,
            "share {}",
            rm.embedding_share()
        );
        assert!(rm.embedding_parameters() > 100 * rm.dense_parameters());
    }

    #[test]
    fn production_rm_scale_is_plausible() {
        let rm = DlrmConfig::production_scale();
        // Hundreds of GB of embeddings; billions of parameters.
        assert!(rm.model_size().as_gigabytes() > 100.0);
        assert!(rm.parameters() > 1_000_000_000);
        assert_eq!(rm.tables().len(), 200);
    }

    #[test]
    fn bandwidth_scales_linearly_with_qps() {
        let rm = DlrmConfig::production_scale();
        let b1 = rm.bandwidth_at(1000.0);
        let b2 = rm.bandwidth_at(2000.0);
        assert!((b2 / b1 - 2.0).abs() < 1e-9);
        assert!(b1.as_gigabytes_per_sec() > 0.5, "bandwidth {b1}");
    }

    #[test]
    fn dense_flops_independent_of_tables() {
        let mut rm = DlrmConfig::production_scale();
        let f = rm.flops_per_query();
        rm.tables_mut().truncate(10);
        assert_eq!(rm.flops_per_query(), f);
        assert!(f > 100_000.0);
    }

    #[test]
    #[should_panic(expected = "qps must be positive")]
    fn bandwidth_rejects_zero_qps() {
        let _ = DlrmConfig::production_scale().bandwidth_at(0.0);
    }

    #[test]
    fn dense_parameters_count_weights_and_biases() {
        // 2→3: 2*3 weights + 3 biases = 9 per MLP.
        let cfg = DlrmConfig::new(
            vec![2, 3],
            vec![2, 3],
            vec![EmbeddingTable::new(10, 4, 4, 1)],
        );
        assert_eq!(cfg.dense_parameters(), 18);
        assert_eq!(cfg.embedding_parameters(), 40);
    }
}
