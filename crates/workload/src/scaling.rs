//! Model/data scaling laws (Figure 2a and Figure 12).
//!
//! Two laws are modeled:
//!
//! * [`QualityScalingLaw`] — logarithmic quality-vs-size: each 10× in model
//!   size buys a fixed quality increment. Calibrated presets reproduce the
//!   paper's Figure 2a anchors (GPT-3-class BLEU 5→40 needs 1000×; Baidu's
//!   1000× buys +0.030 AUC).
//!
//! * [`RecsysScalingLaw`] — the Figure 12 normalized-entropy surface for
//!   recommendation models: NE falls with both data scale and model scale
//!   with strongly diminishing returns, while energy per training step grows.
//!   The calibration reproduces the paper's quantitative claims: the
//!   `(data 2×, model 2×)` *yellow star* uses ~4× less energy than the
//!   `(data 8×, model 16×)` *green star* at only +0.004 NE, and the
//!   quality-energy power law has an exponent in the 0.002–0.004 band.

use serde::{Deserialize, Serialize};

use sustain_core::units::Energy;

/// Logarithmic quality-vs-model-size law: `quality(p) = q0 + k·log10(p / p0)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityScalingLaw {
    base_quality: f64,
    base_parameters: f64,
    quality_per_decade: f64,
}

impl QualityScalingLaw {
    /// Creates a law anchored at `(base_parameters, base_quality)` gaining
    /// `quality_per_decade` per 10× parameters.
    ///
    /// # Panics
    ///
    /// Panics if `base_parameters` is not positive.
    pub fn new(
        base_parameters: f64,
        base_quality: f64,
        quality_per_decade: f64,
    ) -> QualityScalingLaw {
        assert!(
            base_parameters > 0.0,
            "base parameter count must be positive"
        );
        QualityScalingLaw {
            base_quality,
            base_parameters,
            quality_per_decade,
        }
    }

    /// Figure 2a's translation anchor: BLEU 5 at the base size, BLEU 40 at
    /// 1000× — 35 BLEU over 3 decades.
    pub fn gpt3_bleu() -> QualityScalingLaw {
        QualityScalingLaw::new(1.25e8, 5.0, 35.0 / 3.0)
    }

    /// Figure 2a's search anchor: +0.030 AUC per 1000×.
    pub fn baidu_auc() -> QualityScalingLaw {
        QualityScalingLaw::new(1.0e9, 0.700, 0.010)
    }

    /// Quality at a parameter count.
    ///
    /// # Panics
    ///
    /// Panics if `parameters` is not positive.
    pub fn quality(&self, parameters: f64) -> f64 {
        assert!(parameters > 0.0, "parameter count must be positive");
        self.base_quality + self.quality_per_decade * (parameters / self.base_parameters).log10()
    }

    /// Parameters needed to reach a target quality (inverse of [`Self::quality`]).
    pub fn parameters_for(&self, quality: f64) -> f64 {
        self.base_parameters * 10f64.powf((quality - self.base_quality) / self.quality_per_decade)
    }
}

/// One evaluated point on the Figure 12 surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Data scale relative to the baseline (1 = baseline).
    pub data_scale: f64,
    /// Model (embedding) scale relative to the baseline.
    pub model_scale: f64,
    /// Model error in normalized entropy (lower is better).
    pub normalized_entropy: f64,
    /// Energy per training step at this configuration.
    pub energy_per_step: Energy,
}

/// The Figure 12 normalized-entropy / energy surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecsysScalingLaw {
    ne_floor: f64,
    coef_data: f64,
    coef_model: f64,
    exp_data: f64,
    exp_model: f64,
    base_energy: Energy,
    energy_exp_data: f64,
    energy_exp_model: f64,
}

impl RecsysScalingLaw {
    /// The calibration used in the paper-reproduction benches (see module docs).
    pub fn paper_default() -> RecsysScalingLaw {
        RecsysScalingLaw {
            ne_floor: 0.75,
            coef_data: 0.00683,
            coef_model: 0.00683,
            exp_data: 0.25,
            exp_model: 0.25,
            // lint:allow(magic-constant) unit-normalized base of the energy scaling law
            base_energy: Energy::from_kilowatt_hours(1.0),
            energy_exp_data: 0.4,
            energy_exp_model: 0.4,
        }
    }

    /// The yellow-star configuration: data 2×, model 2×.
    pub const YELLOW_STAR: (f64, f64) = (2.0, 2.0);
    /// The green-star configuration: data 8×, model 16×.
    pub const GREEN_STAR: (f64, f64) = (8.0, 16.0);

    /// Normalized entropy at a `(data_scale, model_scale)` configuration.
    ///
    /// # Panics
    ///
    /// Panics if either scale is not positive.
    pub fn normalized_entropy(&self, data_scale: f64, model_scale: f64) -> f64 {
        assert!(
            data_scale > 0.0 && model_scale > 0.0,
            "scales must be positive"
        );
        self.ne_floor
            + self.coef_data * data_scale.powf(-self.exp_data)
            + self.coef_model * model_scale.powf(-self.exp_model)
    }

    /// Energy per training step at a configuration.
    ///
    /// # Panics
    ///
    /// Panics if either scale is not positive.
    pub fn energy_per_step(&self, data_scale: f64, model_scale: f64) -> Energy {
        assert!(
            data_scale > 0.0 && model_scale > 0.0,
            "scales must be positive"
        );
        self.base_energy
            * data_scale.powf(self.energy_exp_data)
            * model_scale.powf(self.energy_exp_model)
    }

    /// Evaluates one configuration.
    pub fn point(&self, data_scale: f64, model_scale: f64) -> ScalingPoint {
        ScalingPoint {
            data_scale,
            model_scale,
            normalized_entropy: self.normalized_entropy(data_scale, model_scale),
            energy_per_step: self.energy_per_step(data_scale, model_scale),
        }
    }

    /// Evaluates the full grid of `data_scales × model_scales` — the raw
    /// material of Figure 12.
    pub fn grid(&self, data_scales: &[f64], model_scales: &[f64]) -> Vec<ScalingPoint> {
        let mut points = Vec::with_capacity(data_scales.len() * model_scales.len());
        for &d in data_scales {
            for &m in model_scales {
                points.push(self.point(d, m));
            }
        }
        points
    }

    /// The tandem (data = model) scaling path — the paper's "energy-optimal
    /// scaling approach" (dashed black line in Figure 12).
    pub fn tandem_path(&self, scales: &[f64]) -> Vec<ScalingPoint> {
        scales.iter().map(|&s| self.point(s, s)).collect()
    }

    /// The effective power-law exponent of quality vs energy between two
    /// configurations: `ε` such that `NE ∝ E^(−ε)`.
    pub fn effective_exponent(&self, a: (f64, f64), b: (f64, f64)) -> f64 {
        let pa = self.point(a.0, a.1);
        let pb = self.point(b.0, b.1);
        let ne_ratio = pb.normalized_entropy / pa.normalized_entropy;
        let e_ratio = pb.energy_per_step / pa.energy_per_step;
        -ne_ratio.ln() / e_ratio.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bleu_anchor_matches_fig2a() {
        let law = QualityScalingLaw::gpt3_bleu();
        let base = 1.25e8;
        assert!((law.quality(base) - 5.0).abs() < 1e-9);
        // 1000× larger → BLEU 40.
        assert!((law.quality(base * 1000.0) - 40.0).abs() < 1e-9);
        // Inverse agrees.
        assert!((law.parameters_for(40.0) / (base * 1000.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_anchor_matches_fig2a() {
        let law = QualityScalingLaw::baidu_auc();
        let gain = law.quality(1.0e12) - law.quality(1.0e9);
        assert!((gain - 0.030).abs() < 1e-12);
    }

    #[test]
    fn ne_decreases_with_scale() {
        let law = RecsysScalingLaw::paper_default();
        let small = law.normalized_entropy(1.0, 1.0);
        let large = law.normalized_entropy(16.0, 16.0);
        assert!(large < small);
        assert!(large > 0.75, "never below the floor");
    }

    #[test]
    fn yellow_vs_green_star_matches_paper() {
        // "The yellow star consumes roughly 4× lower energy as compared to the
        // green star with only 0.004 model quality degradation."
        let law = RecsysScalingLaw::paper_default();
        let yellow = law.point(
            RecsysScalingLaw::YELLOW_STAR.0,
            RecsysScalingLaw::YELLOW_STAR.1,
        );
        let green = law.point(
            RecsysScalingLaw::GREEN_STAR.0,
            RecsysScalingLaw::GREEN_STAR.1,
        );
        let energy_ratio = green.energy_per_step / yellow.energy_per_step;
        let ne_gap = yellow.normalized_entropy - green.normalized_entropy;
        assert!(
            (energy_ratio - 4.0).abs() < 0.05,
            "energy ratio {energy_ratio}"
        );
        assert!((ne_gap - 0.004).abs() < 0.0005, "NE gap {ne_gap}");
    }

    #[test]
    fn power_law_exponent_in_published_band() {
        // "the power of the power law is extremely small (0.002-0.004)".
        let law = RecsysScalingLaw::paper_default();
        let eps =
            law.effective_exponent(RecsysScalingLaw::YELLOW_STAR, RecsysScalingLaw::GREEN_STAR);
        assert!(eps > 0.002 && eps < 0.0045, "exponent {eps}");
    }

    #[test]
    fn tandem_path_is_near_optimal() {
        // At equal energy, tandem scaling should be at least as good as
        // scaling only data or only model.
        let law = RecsysScalingLaw::paper_default();
        let tandem = law.point(4.0, 4.0);
        // Same energy with model-only scaling: (1, m) with m^0.4 = 16^0.4 → m=16.
        let model_only = law.point(1.0, 16.0);
        let data_only = law.point(16.0, 1.0);
        assert!(
            (model_only.energy_per_step / tandem.energy_per_step - 1.0).abs() < 1e-9,
            "configurations must be iso-energy"
        );
        assert!(tandem.normalized_entropy < model_only.normalized_entropy);
        assert!(tandem.normalized_entropy < data_only.normalized_entropy);
    }

    #[test]
    fn grid_covers_all_combinations() {
        let law = RecsysScalingLaw::paper_default();
        let pts = law.grid(&[1.0, 2.0, 4.0], &[1.0, 2.0]);
        assert_eq!(pts.len(), 6);
        let path = law.tandem_path(&[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(path.len(), 4);
        // Energy is monotone along the tandem path.
        for w in path.windows(2) {
            assert!(w[1].energy_per_step > w[0].energy_per_step);
            assert!(w[1].normalized_entropy < w[0].normalized_entropy);
        }
    }

    #[test]
    #[should_panic(expected = "scales must be positive")]
    fn rejects_zero_scale() {
        let _ = RecsysScalingLaw::paper_default().normalized_entropy(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn quality_rejects_zero_params() {
        let _ = QualityScalingLaw::gpt3_bleu().quality(0.0);
    }
}
