//! Supervised vs self-supervised training effort (Appendix C).
//!
//! The paper's published anchors:
//!
//! * **SimCLR** SSL pre-training: 1000 epochs → 69.3 % top-1 (linear eval);
//! * **supervised** ResNet-50: 90 epochs → 76.1 % top-1;
//! * **PAWS** semi-supervised (10 % labels): 200 epochs → 75.5 % top-1,
//!   ~16 hours on 64 V100s.
//!
//! Supervision is worth roughly a **10×** reduction in pre-training effort
//! (epochs over the dataset); PAWS closes most of the gap with 10 % labels.

use serde::{Deserialize, Serialize};
use std::fmt;

use sustain_core::units::{Energy, Fraction, Power, TimeSpan};

/// A training regime with a published compute/accuracy anchor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingRegime {
    kind: RegimeKind,
    epochs: f64,
    top1_accuracy: Fraction,
    label_fraction: Fraction,
}

/// The family of a training regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RegimeKind {
    /// Fully-supervised training.
    Supervised,
    /// Self-supervised pre-training + linear evaluation.
    SelfSupervised,
    /// Semi-supervised pre-training (PAWS-style).
    SemiSupervised,
}

impl fmt::Display for RegimeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegimeKind::Supervised => f.write_str("supervised"),
            RegimeKind::SelfSupervised => f.write_str("self-supervised"),
            RegimeKind::SemiSupervised => f.write_str("semi-supervised"),
        }
    }
}

impl TrainingRegime {
    /// SimCLR: 1000 SSL epochs → 69.3 % top-1.
    pub fn simclr() -> TrainingRegime {
        TrainingRegime {
            kind: RegimeKind::SelfSupervised,
            epochs: 1000.0,
            top1_accuracy: Fraction::saturating(0.693),
            label_fraction: Fraction::ZERO,
        }
    }

    /// Fully-supervised ResNet-50: 90 epochs → 76.1 % top-1.
    pub fn supervised_resnet50() -> TrainingRegime {
        TrainingRegime {
            kind: RegimeKind::Supervised,
            epochs: 90.0,
            top1_accuracy: Fraction::saturating(0.761),
            label_fraction: Fraction::ONE,
        }
    }

    /// PAWS with 10 % labels: 200 epochs → 75.5 % top-1.
    pub fn paws_10pct() -> TrainingRegime {
        TrainingRegime {
            kind: RegimeKind::SemiSupervised,
            epochs: 200.0,
            top1_accuracy: Fraction::saturating(0.755),
            label_fraction: Fraction::saturating(0.10),
        }
    }

    /// The regime family.
    pub fn kind(&self) -> RegimeKind {
        self.kind
    }

    /// Passes over the dataset.
    pub fn epochs(&self) -> f64 {
        self.epochs
    }

    /// Published top-1 accuracy.
    pub fn top1_accuracy(&self) -> Fraction {
        self.top1_accuracy
    }

    /// Fraction of training data that is human-labeled.
    pub fn label_fraction(&self) -> Fraction {
        self.label_fraction
    }

    /// Training-effort ratio versus another regime (epochs / epochs).
    pub fn effort_ratio_vs(&self, other: &TrainingRegime) -> f64 {
        self.epochs / other.epochs
    }

    /// Estimated training energy given a per-epoch energy cost.
    pub fn energy(&self, per_epoch: Energy) -> Energy {
        per_epoch * self.epochs
    }
}

/// PAWS's published wall-clock anchor: ~16 h on 64 V100s; the implied
/// energy at a mean per-GPU power.
pub fn paws_training_energy(mean_gpu_power: Power) -> Energy {
    mean_gpu_power * TimeSpan::from_hours(16.0) * 64.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervision_is_worth_about_10x_effort() {
        // Paper: "using labels and supervised training is worth a roughly 10×
        // reduction in training effort".
        let ratio =
            TrainingRegime::simclr().effort_ratio_vs(&TrainingRegime::supervised_resnet50());
        assert!((ratio - 1000.0 / 90.0).abs() < 1e-9);
        assert!(ratio > 10.0 && ratio < 12.0);
    }

    #[test]
    fn paws_closes_the_gap_with_few_labels() {
        let paws = TrainingRegime::paws_10pct();
        let sup = TrainingRegime::supervised_resnet50();
        let ssl = TrainingRegime::simclr();
        // Accuracy within 0.6 pt of supervised, 5× fewer epochs than SimCLR.
        assert!(sup.top1_accuracy().value() - paws.top1_accuracy().value() < 0.007);
        assert!(paws.top1_accuracy() > ssl.top1_accuracy());
        assert!((ssl.effort_ratio_vs(&paws) - 5.0).abs() < 1e-9);
        assert!((paws.label_fraction().value() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn anchors_match_published_numbers() {
        assert_eq!(TrainingRegime::simclr().epochs(), 1000.0);
        assert_eq!(TrainingRegime::supervised_resnet50().epochs(), 90.0);
        assert_eq!(TrainingRegime::paws_10pct().epochs(), 200.0);
        assert_eq!(TrainingRegime::simclr().kind(), RegimeKind::SelfSupervised);
    }

    #[test]
    fn energy_scales_with_epochs() {
        let per_epoch = Energy::from_kilowatt_hours(10.0);
        let ssl = TrainingRegime::simclr().energy(per_epoch);
        let sup = TrainingRegime::supervised_resnet50().energy(per_epoch);
        assert!((ssl / sup - 1000.0 / 90.0).abs() < 1e-9);
    }

    #[test]
    fn paws_energy_anchor() {
        // 64 V100s at ~250 W mean for 16 h ≈ 256 kWh.
        let e = paws_training_energy(Power::from_watts(250.0));
        assert!((e.as_kilowatt_hours() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(RegimeKind::SemiSupervised.to_string(), "semi-supervised");
    }
}
