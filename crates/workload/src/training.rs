//! Training-job distributions and retraining cadences (§II-A).
//!
//! The paper publishes the Facebook job-duration statistics as percentiles:
//!
//! * research experimentation: p50 ≤ **1.5 GPU-days**, p99 ≤ **24 GPU-days**,
//!   with a tail of trillion-parameter runs above **500 GPU-days**;
//! * production training workflows: p50 = **2.96 GPU-days**, p99 = **125 GPU-days**.
//!
//! [`JobGenerator`] reproduces these via log-normal distributions calibrated
//! exactly at the published percentiles. [`RetrainCadence`] captures that
//! *frequency of training matters*: Search models retrained hourly, Language
//! Translation weekly.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

use sustain_core::stats::{LogNormal, Sampler};
use sustain_core::units::{Energy, Power, TimeSpan};

/// Which population a training job is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobClass {
    /// Research-cluster experimentation workflows.
    Research,
    /// Production (re-)training workflows.
    Production,
}

impl JobClass {
    /// The published `(p50, p99)` GPU-days for this class.
    pub fn published_percentiles(&self) -> (f64, f64) {
        match self {
            JobClass::Research => (1.5, 24.0),
            JobClass::Production => (2.96, 125.0),
        }
    }
}

impl fmt::Display for JobClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobClass::Research => f.write_str("research"),
            JobClass::Production => f.write_str("production"),
        }
    }
}

/// A single training job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingJob {
    gpu_days: f64,
    gpus: u32,
}

impl TrainingJob {
    /// Creates a job of `gpu_days` total GPU-time spread over `gpus` devices.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_days` is negative or `gpus` is zero.
    pub fn new(gpu_days: f64, gpus: u32) -> TrainingJob {
        assert!(gpu_days >= 0.0, "gpu_days must be non-negative");
        assert!(gpus > 0, "a job needs at least one GPU");
        TrainingJob { gpu_days, gpus }
    }

    /// Total GPU-days of work.
    pub fn gpu_days(&self) -> f64 {
        self.gpu_days
    }

    /// Number of GPUs used.
    pub fn gpus(&self) -> u32 {
        self.gpus
    }

    /// Wall-clock duration assuming perfect scaling across the GPUs.
    pub fn wall_clock(&self) -> TimeSpan {
        TimeSpan::from_days(self.gpu_days / self.gpus as f64)
    }

    /// IT energy of the job at a mean per-GPU power draw.
    pub fn energy(&self, mean_gpu_power: Power) -> Energy {
        mean_gpu_power * TimeSpan::from_days(self.gpu_days)
    }
}

/// Samples jobs whose GPU-days distribution matches the published percentiles.
///
/// ```rust
/// use sustain_workload::training::{JobClass, JobGenerator};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sustain_core::Error> {
/// let gen = JobGenerator::calibrated(JobClass::Research)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let job = gen.sample(&mut rng);
/// assert!(job.gpu_days() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobGenerator {
    class: JobClass,
    dist: LogNormal,
    gpus_per_job: u32,
}

impl JobGenerator {
    /// Calibrates a generator to the published percentiles for `class`.
    ///
    /// # Errors
    ///
    /// Propagates calibration errors from [`LogNormal::from_median_p99`]
    /// (cannot occur for the built-in classes).
    pub fn calibrated(class: JobClass) -> sustain_core::Result<JobGenerator> {
        let (p50, p99) = class.published_percentiles();
        Ok(JobGenerator {
            class,
            dist: LogNormal::from_median_p99(p50, p99)?,
            gpus_per_job: 8,
        })
    }

    /// Overrides the GPUs assigned to each sampled job (default 8).
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn with_gpus_per_job(mut self, gpus: u32) -> JobGenerator {
        assert!(gpus > 0, "a job needs at least one GPU");
        self.gpus_per_job = gpus;
        self
    }

    /// The job class.
    pub fn class(&self) -> JobClass {
        self.class
    }

    /// The underlying duration distribution.
    pub fn distribution(&self) -> LogNormal {
        self.dist
    }

    /// Draws one job.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TrainingJob {
        TrainingJob::new(self.dist.sample(rng), self.gpus_per_job)
    }

    /// Draws a batch of jobs.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<TrainingJob> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The fraction of jobs expected to exceed `gpu_days` (tail mass), from
    /// the analytic distribution.
    pub fn tail_fraction_above(&self, gpu_days: f64) -> f64 {
        // P(X > x) for log-normal via the calibrated quantiles: invert by
        // bisection on the quantile function.
        if gpu_days <= 0.0 {
            return 1.0;
        }
        let (mut lo, mut hi) = (1e-9, 1.0 - 1e-9);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.dist.quantile(mid) < gpu_days {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        1.0 - 0.5 * (lo + hi)
    }
}

/// How often a production model is retrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RetrainCadence {
    /// Retrained every hour (the paper's Search example).
    Hourly,
    /// Retrained daily.
    Daily,
    /// Retrained weekly (the paper's Language Translation example).
    Weekly,
    /// Retrained monthly (30 days).
    Monthly,
}

impl RetrainCadence {
    /// The retraining period.
    pub fn period(&self) -> TimeSpan {
        match self {
            RetrainCadence::Hourly => TimeSpan::from_hours(1.0),
            RetrainCadence::Daily => TimeSpan::from_days(1.0),
            RetrainCadence::Weekly => TimeSpan::from_days(7.0),
            RetrainCadence::Monthly => TimeSpan::from_days(30.0),
        }
    }

    /// Number of retraining runs over a horizon (fractional runs truncated).
    pub fn runs_over(&self, horizon: TimeSpan) -> u64 {
        (horizon.as_secs() / self.period().as_secs())
            .floor()
            .max(0.0) as u64
    }

    /// Total training energy over a horizon, given the energy of one run.
    pub fn energy_over(&self, horizon: TimeSpan, per_run: Energy) -> Energy {
        per_run * self.runs_over(horizon) as f64
    }
}

impl fmt::Display for RetrainCadence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrainCadence::Hourly => f.write_str("hourly"),
            RetrainCadence::Daily => f.write_str("daily"),
            RetrainCadence::Weekly => f.write_str("weekly"),
            RetrainCadence::Monthly => f.write_str("monthly"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sustain_core::stats::percentile;

    #[test]
    fn research_distribution_hits_published_percentiles() {
        let gen = JobGenerator::calibrated(JobClass::Research).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let days: Vec<f64> = gen
            .sample_n(&mut rng, 50_000)
            .iter()
            .map(|j| j.gpu_days())
            .collect();
        let p50 = percentile(&days, 50.0);
        let p99 = percentile(&days, 99.0);
        assert!((p50 - 1.5).abs() / 1.5 < 0.05, "p50 {p50}");
        assert!((p99 - 24.0).abs() / 24.0 < 0.10, "p99 {p99}");
    }

    #[test]
    fn production_distribution_hits_published_percentiles() {
        let gen = JobGenerator::calibrated(JobClass::Production).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let days: Vec<f64> = gen
            .sample_n(&mut rng, 50_000)
            .iter()
            .map(|j| j.gpu_days())
            .collect();
        let p50 = percentile(&days, 50.0);
        let p99 = percentile(&days, 99.0);
        assert!((p50 - 2.96).abs() / 2.96 < 0.05, "p50 {p50}");
        assert!((p99 - 125.0).abs() / 125.0 < 0.10, "p99 {p99}");
    }

    #[test]
    fn research_tail_contains_500_gpu_day_runs() {
        // "a number of large-scale, trillion parameter models... over 500 GPU
        // days": rare but present.
        let gen = JobGenerator::calibrated(JobClass::Research).unwrap();
        let tail = gen.tail_fraction_above(500.0);
        assert!(tail > 0.0, "tail must be non-empty");
        assert!(tail < 0.01, "500+ GPU-day runs must be rare, got {tail}");
    }

    #[test]
    fn tail_fraction_edges() {
        let gen = JobGenerator::calibrated(JobClass::Research).unwrap();
        assert_eq!(gen.tail_fraction_above(0.0), 1.0);
        assert!((gen.tail_fraction_above(1.5) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn job_wall_clock_and_energy() {
        let job = TrainingJob::new(16.0, 8);
        assert!((job.wall_clock().as_days() - 2.0).abs() < 1e-12);
        let e = job.energy(Power::from_watts(300.0));
        // 16 GPU-days × 300 W = 115.2 kWh.
        assert!((e.as_kilowatt_hours() - 115.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn job_rejects_zero_gpus() {
        let _ = TrainingJob::new(1.0, 0);
    }

    #[test]
    fn cadence_runs_over_horizon() {
        // Hourly over 2 years vs weekly: 17,520 vs 104 runs.
        let two_years = TimeSpan::from_days(730.0);
        assert_eq!(RetrainCadence::Hourly.runs_over(two_years), 17_520);
        assert_eq!(RetrainCadence::Weekly.runs_over(two_years), 104);
        assert_eq!(
            RetrainCadence::Daily.runs_over(TimeSpan::from_hours(12.0)),
            0
        );
    }

    #[test]
    fn cadence_energy_scales_with_runs() {
        let per_run = Energy::from_kilowatt_hours(10.0);
        let horizon = TimeSpan::from_days(7.0);
        let hourly = RetrainCadence::Hourly.energy_over(horizon, per_run);
        let weekly = RetrainCadence::Weekly.energy_over(horizon, per_run);
        assert!((hourly / weekly - 168.0).abs() < 1e-9);
    }

    #[test]
    fn generator_gpu_override() {
        let gen = JobGenerator::calibrated(JobClass::Research)
            .unwrap()
            .with_gpus_per_job(64);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(gen.sample(&mut rng).gpus(), 64);
    }

    #[test]
    fn display_names() {
        assert_eq!(JobClass::Research.to_string(), "research");
        assert_eq!(RetrainCadence::Hourly.to_string(), "hourly");
    }
}
