//! Lightweight item-graph parser — phase 2 input of the analysis engine.
//!
//! Parses the token stream from [`crate::lexer`] into the items the
//! cross-item rules reason about: `struct` definitions with named field
//! lists, `impl` blocks (inherent and trait) with their methods' body
//! spans, free functions, and `use` imports. It is *not* a Rust parser —
//! generics, where-clauses, and expression grammar are skipped over by
//! bracket matching — but it is exact about the things the rules need:
//! which type an impl targets, which trait it implements, which fields a
//! struct declares, and which token range each fn body covers.
//!
//! `#[cfg(test)]` modules and `#[cfg(test)]` items are dropped entirely,
//! mirroring the line rules' test-region exemption.

use crate::lexer::{Token, TokenKind};

/// One named struct field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// 1-based line of the field declaration.
    pub line: usize,
    /// The field's type, as the joined text of its type tokens
    /// (e.g. `HashMap<String,u64>`).
    pub type_text: String,
}

/// A `struct` with a named field list (tuple and unit structs are recorded
/// with an empty field list and `named_fields == false`).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Named fields, in declaration order.
    pub fields: Vec<Field>,
    /// True for brace-syntax structs (the only ones field rules check).
    pub named_fields: bool,
}

/// A function (free or method) with its body's token span.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared with `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Token-index range (into the lexed stream, comments included) of the
    /// body, *excluding* the outer braces. Empty for bodyless decls.
    pub body: std::ops::Range<usize>,
    /// Token-index range of the signature: from `fn` to the body's `{`.
    pub signature: std::ops::Range<usize>,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// Trait being implemented (last path segment), `None` for inherent
    /// impls.
    pub trait_name: Option<String>,
    /// Target type (last path segment, generics stripped).
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// Methods declared in the block.
    pub methods: Vec<FnItem>,
}

/// A `use` declaration.
#[derive(Debug, Clone)]
pub struct UseItem {
    /// The joined path text (`std::collections::{HashMap,HashSet}`).
    pub path: String,
    /// Leaf names the import brings into scope (group members, or the final
    /// segment; `as` renames record the rename).
    pub leaves: Vec<String>,
    /// 1-based line of the `use` keyword.
    pub line: usize,
}

/// Everything the cross-item rules need to know about one file.
#[derive(Debug, Clone, Default)]
pub struct FileGraph {
    /// `use` imports.
    pub uses: Vec<UseItem>,
    /// Struct definitions.
    pub structs: Vec<StructItem>,
    /// Impl blocks.
    pub impls: Vec<ImplItem>,
    /// Free functions.
    pub fns: Vec<FnItem>,
}

impl FileGraph {
    /// The struct named `name`, if defined in this file.
    pub fn struct_named(&self, name: &str) -> Option<&StructItem> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Every function in the file — free fns and methods — paired with the
    /// name of the impl target when it is a method.
    pub fn all_fns(&self) -> impl Iterator<Item = (&FnItem, Option<&str>)> {
        self.fns
            .iter()
            .map(|f| (f, None))
            .chain(self.impls.iter().flat_map(|i| {
                i.methods
                    .iter()
                    .map(move |m| (m, Some(i.type_name.as_str())))
            }))
    }
}

/// Parses a lexed token stream into a [`FileGraph`].
pub fn parse(tokens: &[Token]) -> FileGraph {
    let mut parser = Parser {
        tokens,
        pos: 0,
        graph: FileGraph::default(),
    };
    parser.items(usize::MAX);
    parser.graph
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    graph: FileGraph,
}

impl<'a> Parser<'a> {
    /// The next significant (non-comment) token at or after `self.pos`,
    /// advancing past comments.
    fn peek(&mut self) -> Option<&'a Token> {
        while let Some(tok) = self.tokens.get(self.pos) {
            if tok.kind == TokenKind::Comment {
                self.pos += 1;
            } else {
                return Some(tok);
            }
        }
        None
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let tok = self.peek()?;
        self.pos += 1;
        Some(tok)
    }

    /// Skips a balanced bracket group. `self.pos` must be at the opener;
    /// afterwards it is just past the matching closer.
    fn skip_group(&mut self, open: char, close: char) {
        debug_assert!(self.tokens[self.pos].is_punct(open));
        self.pos += 1;
        let mut depth = 1u32;
        while let Some(tok) = self.bump() {
            if tok.is_punct(open) {
                depth += 1;
            } else if tok.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skips a generics group `<...>`, tracking nesting but ignoring the
    /// shift operators that cannot appear in type position at item level.
    fn skip_generics(&mut self) {
        debug_assert!(self.tokens[self.pos].is_punct('<'));
        self.pos += 1;
        let mut depth = 1u32;
        while let Some(tok) = self.bump() {
            if tok.is_punct('<') {
                depth += 1;
            } else if tok.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else if tok.is_punct('(') {
                // Fn-pointer sugar inside generics.
                self.pos -= 1;
                self.skip_group('(', ')');
            }
        }
    }

    /// Skips to (and past) the next `;` or balanced `{...}` at the current
    /// nesting level — the "rest of this item" fallback.
    fn skip_item_rest(&mut self) {
        while let Some(tok) = self.peek() {
            if tok.is_punct(';') {
                self.pos += 1;
                return;
            }
            if tok.is_punct('{') {
                self.skip_group('{', '}');
                return;
            }
            if tok.is_punct('}') {
                return; // caller's closer — don't consume
            }
            self.pos += 1;
        }
    }

    /// Parses an attribute at `#`; returns true when it is `#[cfg(test)]`.
    fn attribute(&mut self) -> bool {
        self.pos += 1; // `#`
        if self.peek().is_some_and(|t| t.is_punct('!')) {
            self.pos += 1; // inner attribute `#![...]`
        }
        if !self.peek().is_some_and(|t| t.is_punct('[')) {
            return false;
        }
        let start = self.pos;
        self.skip_group('[', ']');
        let body = &self.tokens[start..self.pos];
        let mut saw_cfg = false;
        let mut saw_test = false;
        for tok in body {
            if tok.is_ident("cfg") {
                saw_cfg = true;
            }
            if tok.is_ident("test") {
                saw_test = true;
            }
        }
        saw_cfg && saw_test
    }

    /// Parses items until the brace depth closes (`limit` tokens max as a
    /// runaway guard).
    fn items(&mut self, limit: usize) {
        let mut cfg_test = false;
        let mut is_pub = false;
        let mut steps = 0usize;
        while let Some(tok) = self.peek() {
            steps += 1;
            if steps > limit {
                return;
            }
            if tok.is_punct('}') {
                return;
            }
            if tok.is_punct('#') {
                cfg_test |= self.attribute();
                continue;
            }
            if tok.is_ident("pub") {
                self.pos += 1;
                // `pub(crate)` and friends.
                if self.peek().is_some_and(|t| t.is_punct('(')) {
                    self.skip_group('(', ')');
                }
                is_pub = true;
                continue;
            }
            if tok.is_ident("use") {
                let item = self.use_item();
                if !cfg_test {
                    self.graph.uses.push(item);
                }
            } else if tok.is_ident("struct") {
                let item = self.struct_item();
                if !cfg_test {
                    self.graph.structs.push(item);
                }
            } else if tok.is_ident("impl") {
                let item = self.impl_item();
                if let (false, Some(item)) = (cfg_test, item) {
                    self.graph.impls.push(item);
                }
            } else if tok.is_ident("fn") {
                let item = self.fn_item(is_pub);
                if !cfg_test {
                    self.graph.fns.push(item);
                }
            } else if tok.is_ident("mod") {
                self.pos += 1;
                let _name = self.bump(); // module name
                match self.peek() {
                    Some(t) if t.is_punct('{') => {
                        if cfg_test {
                            self.skip_group('{', '}');
                        } else {
                            self.pos += 1;
                            self.items(limit);
                            // Consume the module's closer.
                            if self.peek().is_some_and(|t| t.is_punct('}')) {
                                self.pos += 1;
                            }
                        }
                    }
                    _ => self.skip_item_rest(),
                }
            } else if tok.is_ident("enum")
                || tok.is_ident("trait")
                || tok.is_ident("union")
                || tok.is_ident("macro_rules")
            {
                self.pos += 1;
                self.skip_item_rest();
            } else {
                // `const`, `static`, `type`, `extern`, stray tokens: skip
                // the rest of the item conservatively.
                self.pos += 1;
                if tok.is_ident("const") || tok.is_ident("static") || tok.is_ident("type") {
                    self.skip_item_rest();
                }
            }
            cfg_test = false;
            is_pub = false;
        }
    }

    fn use_item(&mut self) -> UseItem {
        let line = self.tokens[self.pos].line;
        self.pos += 1; // `use`
        let mut path = String::new();
        let mut leaves = Vec::new();
        let mut prev_ident: Option<String> = None;
        let mut after_as = false;
        while let Some(tok) = self.bump() {
            if tok.is_punct(';') {
                break;
            }
            match tok.kind {
                TokenKind::Ident => {
                    if tok.text == "as" {
                        // The rename replaces the previous leaf candidate.
                        after_as = true;
                        prev_ident = None;
                    } else if after_as {
                        leaves.push(tok.text.clone());
                        after_as = false;
                    } else {
                        prev_ident = Some(tok.text.clone());
                    }
                    path.push_str(&tok.text);
                }
                TokenKind::Punct(c) => {
                    if c == ':' {
                        // Path separator: the pending ident was not a leaf.
                        if path.ends_with(':') || !path.ends_with("::") {
                            prev_ident = None;
                        }
                    } else if matches!(c, ',' | '}' | '*') {
                        if let Some(leaf) = prev_ident.take() {
                            leaves.push(leaf);
                        }
                        if c == '*' {
                            leaves.push("*".to_string());
                        }
                    }
                    path.push(c);
                }
                _ => path.push_str(&tok.text),
            }
        }
        if let Some(leaf) = prev_ident.take() {
            leaves.push(leaf);
        }
        UseItem { path, leaves, line }
    }

    fn struct_item(&mut self) -> StructItem {
        let line = self.tokens[self.pos].line;
        self.pos += 1; // `struct`
        let name = self
            .bump()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if self.peek().is_some_and(|t| t.is_punct('<')) {
            self.skip_generics();
        }
        // Where-clause before the brace.
        while let Some(tok) = self.peek() {
            if tok.is_punct('{') || tok.is_punct(';') || tok.is_punct('(') {
                break;
            }
            if tok.is_punct('<') {
                self.skip_generics();
            } else {
                self.pos += 1;
            }
        }
        match self.peek() {
            Some(t) if t.is_punct('{') => {
                let fields = self.field_list();
                StructItem {
                    name,
                    line,
                    fields,
                    named_fields: true,
                }
            }
            Some(t) if t.is_punct('(') => {
                self.skip_group('(', ')');
                if self.peek().is_some_and(|t| t.is_punct(';')) {
                    self.pos += 1;
                }
                StructItem {
                    name,
                    line,
                    fields: Vec::new(),
                    named_fields: false,
                }
            }
            _ => {
                self.skip_item_rest();
                StructItem {
                    name,
                    line,
                    fields: Vec::new(),
                    named_fields: false,
                }
            }
        }
    }

    /// Parses `{ field: Type, ... }` after a struct header.
    fn field_list(&mut self) -> Vec<Field> {
        self.pos += 1; // `{`
        let mut fields = Vec::new();
        loop {
            // Skip attributes and visibility on the field.
            loop {
                match self.peek() {
                    Some(t) if t.is_punct('#') => {
                        let _ = self.attribute();
                    }
                    Some(t) if t.is_ident("pub") => {
                        self.pos += 1;
                        if self.peek().is_some_and(|t| t.is_punct('(')) {
                            self.skip_group('(', ')');
                        }
                    }
                    _ => break,
                }
            }
            match self.peek() {
                None => break,
                Some(t) if t.is_punct('}') => {
                    self.pos += 1;
                    break;
                }
                Some(name_tok) if name_tok.kind == TokenKind::Ident => {
                    let fname = name_tok.text.clone();
                    let fline = name_tok.line;
                    self.pos += 1;
                    if !self.peek().is_some_and(|t| t.is_punct(':')) {
                        // Not `name: Type` — bail out of this field.
                        self.skip_field_rest();
                        continue;
                    }
                    self.pos += 1; // `:`
                    let mut type_text = String::new();
                    let mut depth = 0u32;
                    while let Some(tok) = self.peek() {
                        if depth == 0 && (tok.is_punct(',') || tok.is_punct('}')) {
                            break;
                        }
                        match tok.kind {
                            TokenKind::Punct('<')
                            | TokenKind::Punct('(')
                            | TokenKind::Punct('[') => depth += 1,
                            TokenKind::Punct('>')
                            | TokenKind::Punct(')')
                            | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
                            _ => {}
                        }
                        if tok.kind != TokenKind::Comment {
                            type_text.push_str(&tok.text);
                        }
                        self.pos += 1;
                    }
                    if self.peek().is_some_and(|t| t.is_punct(',')) {
                        self.pos += 1;
                    }
                    fields.push(Field {
                        name: fname,
                        line: fline,
                        type_text,
                    });
                }
                Some(_) => {
                    self.pos += 1;
                }
            }
        }
        fields
    }

    /// Skips to the next `,` at field level or the closing `}`.
    fn skip_field_rest(&mut self) {
        let mut depth = 0u32;
        while let Some(tok) = self.peek() {
            if depth == 0 && tok.is_punct(',') {
                self.pos += 1;
                return;
            }
            if depth == 0 && tok.is_punct('}') {
                return;
            }
            match tok.kind {
                TokenKind::Punct('<')
                | TokenKind::Punct('(')
                | TokenKind::Punct('[')
                | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('>')
                | TokenKind::Punct(')')
                | TokenKind::Punct(']')
                | TokenKind::Punct('}') => depth = depth.saturating_sub(1),
                _ => {}
            }
            self.pos += 1;
        }
    }

    fn impl_item(&mut self) -> Option<ImplItem> {
        let line = self.tokens[self.pos].line;
        self.pos += 1; // `impl`
        if self.peek().is_some_and(|t| t.is_punct('<')) {
            self.skip_generics();
        }
        // Collect the path up to `for` or `{`; if `for` appears, the first
        // path was the trait and the second is the type.
        let mut first: Vec<String> = Vec::new();
        let mut second: Vec<String> = Vec::new();
        let mut saw_for = false;
        loop {
            let tok = self.peek()?;
            if tok.is_punct('{') {
                break;
            }
            if tok.is_ident("for") {
                saw_for = true;
                self.pos += 1;
                continue;
            }
            if tok.is_ident("where") {
                // Skip the where-clause up to the brace.
                while let Some(t) = self.peek() {
                    if t.is_punct('{') {
                        break;
                    }
                    if t.is_punct('<') {
                        self.skip_generics();
                    } else {
                        self.pos += 1;
                    }
                }
                continue;
            }
            if tok.is_punct('<') {
                self.skip_generics();
                continue;
            }
            if tok.kind == TokenKind::Ident {
                if saw_for {
                    second.push(tok.text.clone());
                } else {
                    first.push(tok.text.clone());
                }
            }
            self.pos += 1;
        }
        let (trait_name, type_path) = if saw_for {
            (first.last().cloned(), second)
        } else {
            (None, first)
        };
        let type_name = type_path.last().cloned().unwrap_or_default();
        // Body.
        self.pos += 1; // `{`
        let mut methods = Vec::new();
        let mut cfg_test = false;
        let mut is_pub = false;
        while let Some(tok) = self.peek() {
            if tok.is_punct('}') {
                self.pos += 1;
                break;
            }
            if tok.is_punct('#') {
                cfg_test |= self.attribute();
                continue;
            }
            if tok.is_ident("pub") {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.is_punct('(')) {
                    self.skip_group('(', ')');
                }
                is_pub = true;
                continue;
            }
            if tok.is_ident("fn") {
                let method = self.fn_item(is_pub);
                if !cfg_test {
                    methods.push(method);
                }
            } else if tok.is_ident("const") || tok.is_ident("type") {
                self.pos += 1;
                self.skip_item_rest();
            } else {
                self.pos += 1;
            }
            cfg_test = false;
            is_pub = false;
        }
        Some(ImplItem {
            trait_name,
            type_name,
            line,
            methods,
        })
    }

    fn fn_item(&mut self, is_pub: bool) -> FnItem {
        let sig_start = self.pos;
        let line = self.tokens[self.pos].line;
        self.pos += 1; // `fn`
        let name = self
            .bump()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        // Signature: skip generics, params, return type, where-clause until
        // the body `{` or a `;` (trait decl / extern).
        loop {
            match self.peek() {
                None => {
                    return FnItem {
                        name,
                        line,
                        is_pub,
                        body: self.pos..self.pos,
                        signature: sig_start..self.pos,
                    }
                }
                Some(t) if t.is_punct('<') => self.skip_generics(),
                Some(t) if t.is_punct('(') => self.skip_group('(', ')'),
                Some(t) if t.is_punct(';') => {
                    self.pos += 1;
                    return FnItem {
                        name,
                        line,
                        is_pub,
                        body: self.pos..self.pos,
                        signature: sig_start..self.pos,
                    };
                }
                Some(t) if t.is_punct('{') => break,
                Some(_) => self.pos += 1,
            }
        }
        let sig_end = self.pos;
        let body_start = self.pos + 1;
        self.skip_group('{', '}');
        let body_end = self.pos.saturating_sub(1);
        FnItem {
            name,
            line,
            is_pub,
            body: body_start..body_end.max(body_start),
            signature: sig_start..sig_end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph(src: &str) -> FileGraph {
        parse(&lex(src))
    }

    #[test]
    fn parses_struct_fields_with_types() {
        let g = graph(
            "pub struct Config {\n    pub rate: f64,\n    pub map: HashMap<String, u64>,\n    name: String,\n}\n",
        );
        let s = g.struct_named("Config").unwrap();
        assert!(s.named_fields);
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["rate", "map", "name"]);
        assert!(s.fields[1].type_text.contains("HashMap"));
        assert_eq!(s.fields[0].line, 2);
    }

    #[test]
    fn tuple_and_unit_structs_have_no_named_fields() {
        let g = graph("struct Wrapper(u64);\nstruct Marker;\n");
        assert!(!g.struct_named("Wrapper").unwrap().named_fields);
        assert!(!g.struct_named("Marker").unwrap().named_fields);
    }

    #[test]
    fn parses_trait_impls_with_methods() {
        let g = graph(
            "impl CacheKey for Config {\n    fn namespace(&self) -> &'static str { \"c\" }\n    fn encode_key(&self, enc: &mut KeyEncoder) {\n        enc.write_f64(self.rate);\n    }\n}\n",
        );
        assert_eq!(g.impls.len(), 1);
        let imp = &g.impls[0];
        assert_eq!(imp.trait_name.as_deref(), Some("CacheKey"));
        assert_eq!(imp.type_name, "Config");
        let names: Vec<&str> = imp.methods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["namespace", "encode_key"]);
        assert!(!imp.methods[1].body.is_empty());
    }

    #[test]
    fn parses_qualified_trait_and_generic_impls() {
        let g = graph(
            "impl sustain_cache::CacheValue for Table {\n    fn to_cache_bytes(&self) -> Vec<u8> { Vec::new() }\n}\nimpl<'a> CacheKey for ReplicaKey<'a> {\n    fn encode_key(&self, enc: &mut KeyEncoder) {}\n}\nimpl Config {\n    pub fn new() -> Config { Config }\n}\n",
        );
        assert_eq!(g.impls[0].trait_name.as_deref(), Some("CacheValue"));
        assert_eq!(g.impls[0].type_name, "Table");
        assert_eq!(g.impls[1].trait_name.as_deref(), Some("CacheKey"));
        assert_eq!(g.impls[1].type_name, "ReplicaKey");
        assert_eq!(g.impls[2].trait_name, None);
        assert_eq!(g.impls[2].type_name, "Config");
        assert!(g.impls[2].methods[0].is_pub);
    }

    #[test]
    fn parses_use_imports_with_groups_and_renames() {
        let g = graph(
            "use std::collections::{HashMap, HashSet};\nuse std::fmt;\nuse rand::Rng as RngTrait;\n",
        );
        assert_eq!(g.uses.len(), 3);
        assert_eq!(g.uses[0].leaves, ["HashMap", "HashSet"]);
        assert!(g.uses[0].path.contains("std::collections"));
        assert_eq!(g.uses[1].leaves, ["fmt"]);
        assert_eq!(g.uses[2].leaves, ["RngTrait"]);
    }

    #[test]
    fn cfg_test_modules_and_items_are_dropped() {
        let g = graph(
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    struct Hidden { x: u64 }\n    fn helper() {}\n}\n#[cfg(test)]\nfn also_hidden() {}\n",
        );
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "real");
        assert!(g.struct_named("Hidden").is_none());
    }

    #[test]
    fn nested_modules_are_walked() {
        let g = graph("mod inner {\n    pub struct Deep { pub v: u64 }\n    pub fn f() {}\n}\n");
        assert!(g.struct_named("Deep").is_some());
        assert_eq!(g.fns.len(), 1);
    }

    #[test]
    fn fn_body_spans_cover_the_body() {
        let src = "fn f(x: u64) -> u64 {\n    let y = x + 1;\n    y\n}\nfn g();\n";
        let toks = lex(src);
        let g = parse(&toks);
        let f = &g.fns[0];
        assert_eq!(f.name, "f");
        let body_texts: Vec<&str> = toks[f.body.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(body_texts.contains(&"y"));
        assert!(!body_texts.contains(&"}"));
        assert!(g.fns[1].body.is_empty());
    }

    #[test]
    fn where_clauses_and_generics_do_not_confuse_the_parser() {
        let g = graph(
            "impl<T: Clone> Holder<T> where T: Send {\n    fn get(&self) -> T { self.0.clone() }\n}\npub fn free<F: Fn(u64) -> u64>(f: F) -> u64 { f(1) }\n",
        );
        assert_eq!(g.impls[0].type_name, "Holder");
        assert_eq!(g.impls[0].methods[0].name, "get");
        assert_eq!(g.fns[0].name, "free");
        assert!(g.fns[0].is_pub);
    }
}
