//! Whole-file tokenizer — phase 1 of the static-analysis engine.
//!
//! Where [`crate::sanitize`] gives the line rules a masked per-line view,
//! the lexer gives the item-graph rules a flat token stream over the whole
//! file: identifiers, numeric literals, string/char literals (contents
//! elided), lifetimes, punctuation, and comments, each carrying its byte
//! span in the original source and its 1-based line number. The two passes
//! implement the same comment/string semantics independently — nested
//! block comments, raw strings (`r#"…"#`, `br"…"`), escapes, and
//! char-vs-lifetime ticks — and the `lexer_props` proptest suite holds
//! them to agreement on randomly generated sources, so a masking bug in
//! either pass shows up as a differential failure instead of a silently
//! mis-scanned file.

use std::fmt;

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `self`, `HashMap`, …).
    Ident,
    /// A numeric literal, including any type suffix (`42`, `0.25`, `6e3`,
    /// `0xffu32`, `1_000.5f64`).
    Number,
    /// A string or byte-string literal; `text` keeps the delimiters but the
    /// contents are elided so rules can never match inside them.
    Str,
    /// A char literal; contents elided like [`TokenKind::Str`].
    Char,
    /// A lifetime tick such as `'a` (including the ident).
    Lifetime,
    /// A single punctuation character (`{`, `.`, `:`, …). Multi-character
    /// operators arrive as adjacent tokens; the parser reassembles the few
    /// sequences it cares about (`::`, `->`).
    Punct(char),
    /// A line or block comment; `text` is the comment body without the
    /// delimiters. `lint:allow` markers are read from these tokens.
    Comment,
}

/// One lexed token with its position in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Token text. For [`TokenKind::Str`]/[`TokenKind::Char`] the contents
    /// are replaced by the delimiters only; for every other kind this is
    /// exactly `&source[start..end]`.
    pub text: String,
    /// Byte offset of the token's first byte in the source.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True when the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}..{}", self.text, self.start, self.end)
    }
}

/// True for characters that can start a Rust identifier.
fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

/// True for characters that can continue a Rust identifier.
fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes `source`. Never fails: unrecognized bytes become
/// [`TokenKind::Punct`] tokens, so the stream always covers the file and
/// the parser degrades gracefully on exotic input.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn offset(&self, idx: usize) -> usize {
        self.chars
            .get(idx)
            .map(|&(o, _)| o)
            .unwrap_or(self.src.len())
    }

    /// Advances one char, tracking line numbers.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.pos) {
            if c == '\n' {
                self.line += 1;
            }
        }
        self.pos += 1;
    }

    fn push(&mut self, kind: TokenKind, text: String, start_idx: usize, line: usize) {
        let start = self.offset(start_idx);
        let end = self.offset(self.pos);
        self.out.push(Token {
            kind,
            text,
            start,
            end,
            line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(start, line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(start, line);
            } else if let Some(hashes) = self.raw_string_open() {
                self.raw_string(start, line, hashes);
            } else if c == '"' {
                self.string(start, line);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.bump();
                self.string(start, line);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.bump();
                self.char_or_lifetime(start, line);
            } else if c == '\'' {
                self.char_or_lifetime(start, line);
            } else if is_ident_start(c) {
                self.ident(start, line);
            } else if c.is_ascii_digit() {
                self.number(start, line);
            } else if c.is_whitespace() {
                self.bump();
            } else {
                self.bump();
                self.push(TokenKind::Punct(c), c.to_string(), start, line);
            }
        }
        self.out
    }

    fn line_comment(&mut self, start: usize, line: usize) {
        self.bump();
        self.bump();
        let body_start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[body_start..self.pos]
            .iter()
            .map(|&(_, c)| c)
            .collect();
        self.push(TokenKind::Comment, text, start, line);
    }

    fn block_comment(&mut self, start: usize, line: usize) {
        self.bump();
        self.bump();
        let body_start = self.pos;
        let mut depth = 1u32;
        let mut body_end = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                if depth == 0 {
                    body_end = self.pos;
                    self.bump();
                    self.bump();
                    break;
                }
                self.bump();
                self.bump();
            } else if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
            body_end = self.pos;
        }
        let text: String = self.chars[body_start..body_end.min(self.pos)]
            .iter()
            .map(|&(_, c)| c)
            .collect();
        self.push(TokenKind::Comment, text, start, line);
    }

    /// Detects `r"`, `r#"`, `br##"` … at the cursor; returns the hash count.
    fn raw_string_open(&self) -> Option<u32> {
        let mut j = 0usize;
        if self.peek(j) == Some('b') {
            j += 1;
        }
        if self.peek(j) != Some('r') {
            return None;
        }
        // Reject the tail of a longer identifier (`for"` is invalid Rust,
        // but stay conservative — same rule as the sanitizer).
        if self.pos > 0 && is_ident_continue(self.chars[self.pos - 1].1) {
            return None;
        }
        j += 1;
        let mut count = 0u32;
        while self.peek(j) == Some('#') {
            count += 1;
            j += 1;
        }
        if self.peek(j) == Some('"') {
            Some(count)
        } else {
            None
        }
    }

    fn raw_string(&mut self, start: usize, line: usize, hashes: u32) {
        // Consume the opener: optional `b`, `r`, hashes, quote (validated by
        // `raw_string_open`, so the quote is reachable).
        while matches!(self.peek(0), Some(c) if c != '"') {
            self.bump();
        }
        self.bump();
        loop {
            match self.peek(0) {
                None => break,
                Some('"') if (1..=hashes as usize).all(|k| self.peek(k) == Some('#')) => {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                Some(_) => self.bump(),
            }
        }
        self.push(TokenKind::Str, "\"\"".to_string(), start, line);
    }

    fn string(&mut self, start: usize, line: usize) {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some('"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
        self.push(TokenKind::Str, "\"\"".to_string(), start, line);
    }

    /// A `'` in code position: char literal or lifetime, mirroring the
    /// sanitizer's disambiguation.
    fn char_or_lifetime(&mut self, start: usize, line: usize) {
        self.bump(); // the tick
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: skip escape, scan to closing tick.
                self.bump();
                self.bump();
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, "''".to_string(), start, line);
            }
            Some(c) if self.peek(1) == Some('\'') => {
                let _ = c;
                self.bump();
                self.bump();
                self.push(TokenKind::Char, "''".to_string(), start, line);
            }
            Some(c) if is_ident_start(c) => {
                // Lifetime: consume the identifier.
                let ident_start = self.pos;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                let text: String = std::iter::once('\'')
                    .chain(self.chars[ident_start..self.pos].iter().map(|&(_, c)| c))
                    .collect();
                self.push(TokenKind::Lifetime, text, start, line);
            }
            _ => {
                self.push(TokenKind::Punct('\''), "'".to_string(), start, line);
            }
        }
    }

    fn ident(&mut self, start: usize, line: usize) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .map(|&(_, c)| c)
            .collect();
        self.push(TokenKind::Ident, text, start, line);
    }

    fn number(&mut self, start: usize, line: usize) {
        // Integer part (decimal, hex, octal, binary — digits + `_` + the
        // base letters; hex digits are covered by the ident-continue set).
        let hex = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('X') | Some('o') | Some('b'));
        self.bump();
        if hex {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                self.bump();
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump();
            }
            // Fractional part: only when the dot is followed by a digit, so
            // ranges (`0..n`) and method calls on literals stay separate
            // tokens.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let sign = matches!(self.peek(1), Some('+') | Some('-'));
                let digit_at = if sign { 2 } else { 1 };
                if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                    if sign {
                        self.bump();
                    }
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
            }
        }
        // Type suffix (`f64`, `u32`, `usize`, …).
        if self.peek(0).is_some_and(is_ident_start) {
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .map(|&(_, c)| c)
            .collect();
        self.push(TokenKind::Number, text, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_punct() {
        let toks = kinds("fn f(x: f64) -> u32 { x as u32 + 0x1f }");
        assert!(toks.contains(&(TokenKind::Ident, "fn".into())));
        assert!(toks.contains(&(TokenKind::Ident, "f64".into())));
        assert!(toks.contains(&(TokenKind::Number, "0x1f".into())));
        assert!(toks.contains(&(TokenKind::Punct('{'), "{".into())));
    }

    #[test]
    fn float_and_range_disambiguation() {
        let toks = kinds("let a = 0.25_f64; for i in 0..10 {}");
        assert!(toks.contains(&(TokenKind::Number, "0.25_f64".into())));
        assert!(toks.contains(&(TokenKind::Number, "0".into())));
        assert!(toks.contains(&(TokenKind::Number, "10".into())));
    }

    #[test]
    fn exponent_forms() {
        let toks = kinds("1e3 6.25e-4 2E+10 7e");
        assert!(toks.contains(&(TokenKind::Number, "1e3".into())));
        assert!(toks.contains(&(TokenKind::Number, "6.25e-4".into())));
        assert!(toks.contains(&(TokenKind::Number, "2E+10".into())));
        // `7e` is a number token with suffix `e`, not an exponent.
        assert!(toks.contains(&(TokenKind::Number, "7e".into())));
    }

    #[test]
    fn strings_and_chars_are_elided() {
        let toks = kinds(r#"let s = "x.unwrap()"; let c = '"'; let l: &'a str = r#s;"#);
        assert!(toks.contains(&(TokenKind::Str, "\"\"".into())));
        assert!(toks.contains(&(TokenKind::Char, "''".into())));
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(!toks.iter().any(|(_, t)| t.contains("unwrap")));
    }

    #[test]
    fn raw_strings_close_on_matching_hashes() {
        let toks = kinds("let s = r#\"has \"quote\" inside\"#; tail()");
        assert!(toks.contains(&(TokenKind::Str, "\"\"".into())));
        assert!(toks.contains(&(TokenKind::Ident, "tail".into())));
        assert!(!toks.iter().any(|(_, t)| t.contains("quote")));
    }

    #[test]
    fn comments_are_tokens_with_bodies() {
        let toks = lex("let x = 1; // lint:allow(float-eq) ok\n/* block\nspan */ let y = 2;");
        let comments: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Comment)
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("lint:allow(float-eq)"));
        assert!(comments[1].text.contains("block\nspan"));
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* one /* two */ still */ b");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn offsets_round_trip() {
        let src = "fn μ(x: f64) -> f64 { x * 0.5 } // tail";
        for tok in lex(src) {
            match tok.kind {
                TokenKind::Str | TokenKind::Char | TokenKind::Comment => {}
                _ => assert_eq!(&src[tok.start..tok.end], tok.text, "at {}", tok.start),
            }
        }
    }

    #[test]
    fn lines_are_tracked_across_multiline_strings() {
        let toks = lex("let s = \"first\nsecond\nthird\"; done");
        let done = toks.iter().find(|t| t.is_ident("done")).unwrap();
        assert_eq!(done.line, 3);
    }
}
