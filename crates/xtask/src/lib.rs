//! Workspace automation tasks (`cargo xtask <command>`).
//!
//! The flagship command is `lint`: a std-only static-analysis pass over the
//! workspace's `.rs` files enforcing the carbon-accounting invariants that
//! keep the paper-reproduction figures trustworthy — dimensional consistency
//! (no raw-`f64` unit leaks), determinism (seed-reproducible simulations),
//! panic discipline in library code, and named physical constants.
//!
//! Every figure in Wu et al. (MLSys 2022) is an accounting result: a chain
//! of W → J → kWh → kgCO2e conversions. Ground-truthing studies of software
//! carbon trackers found unit-conversion slips dominate tracker error, so
//! this linter machine-checks the conventions the workspace relies on
//! instead of trusting review to catch them.
//!
//! The pass runs in two phases over the same token substrate:
//!
//! 1. **Line rules** ([`rules`]) scan the sanitized code channel of each
//!    line ([`sanitize::split_lines`]) with simple lexical state.
//! 2. **Graph rules** ([`rules_graph`]) run over an *item graph* parsed
//!    from the full token stream ([`lexer`] → [`items`]): structs with
//!    field lists, impl blocks with method names, `use` imports, and fn
//!    bodies as token spans. They relate items across files — a `CacheKey`
//!    impl to its struct's field list, an import to every iteration site.
//!
//! Rules (suppress any one occurrence with `// lint:allow(<rule>)` plus a
//! one-line justification):
//!
//! | rule                     | what it rejects                                             |
//! |--------------------------|-------------------------------------------------------------|
//! | `unit-leak`              | pub `f64` params/fields/returns with unit-suffixed names    |
//! | `float-eq`               | `==`/`!=` against float literals outside `units.rs`         |
//! | `panic-discipline`       | `unwrap`/`expect`/`panic!`/literal indexing in library src  |
//! | `determinism`            | wall-clock/`thread_rng` calls in simulation crates          |
//! | `thread-discipline`      | `thread::spawn`/`thread::scope` outside `par`/`obs`         |
//! | `magic-constant`         | bare literals fed to carbon-unit constructors               |
//! | `lint-header`            | crate roots missing `#![forbid(unsafe_code)]`               |
//! | `fs-discipline`          | filesystem writes outside `crates/cache` + sanctioned sites |
//! | `cache-key-completeness` | struct fields missing from `CacheKey`/`CacheValue` codecs   |
//! | `determinism-taint`      | iteration/retain/float reductions over unordered collections|
//! | `obs-coverage`           | uninstrumented loop-bearing pub fns in hot-path files       |
//! | `const-provenance`       | ≥3-sig-digit float literals outside `constants` modules     |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

pub mod items;
pub mod lexer;
pub mod perf;
pub mod sanitize;

mod rules;
mod rules_graph;

/// The twelve lint rules, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Raw `f64` in public API carrying a unit suffix.
    UnitLeak,
    /// Exact float equality comparison.
    FloatEq,
    /// Panicking constructs in library code.
    PanicDiscipline,
    /// Nondeterminism sources in simulation crates.
    Determinism,
    /// Raw thread primitives outside the sanctioned parallel/obs layers.
    ThreadDiscipline,
    /// Bare physical-constant literals outside designated modules.
    MagicConstant,
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    LintHeader,
    /// Direct filesystem writes outside the cache crate and the sanctioned
    /// exporter sites.
    FsDiscipline,
    /// Struct fields invisible to their type's `CacheKey` encoder or
    /// `CacheValue` codec (stale-cache hazard).
    CacheKeyCompleteness,
    /// Order-dependent operations (iteration, `retain`, float reductions)
    /// on unordered collections in simulation crates.
    DeterminismTaint,
    /// Loop-bearing pub fns in instrumented hot-path files with no span or
    /// obs handle.
    ObsCoverage,
    /// Unprovenanced multi-digit float literals in simulation fn bodies.
    ConstProvenance,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 12] = [
        Rule::UnitLeak,
        Rule::FloatEq,
        Rule::PanicDiscipline,
        Rule::Determinism,
        Rule::ThreadDiscipline,
        Rule::MagicConstant,
        Rule::LintHeader,
        Rule::FsDiscipline,
        Rule::CacheKeyCompleteness,
        Rule::DeterminismTaint,
        Rule::ObsCoverage,
        Rule::ConstProvenance,
    ];

    /// The kebab-case name used in diagnostics and `lint:allow(..)` markers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnitLeak => "unit-leak",
            Rule::FloatEq => "float-eq",
            Rule::PanicDiscipline => "panic-discipline",
            Rule::Determinism => "determinism",
            Rule::ThreadDiscipline => "thread-discipline",
            Rule::MagicConstant => "magic-constant",
            Rule::LintHeader => "lint-header",
            Rule::FsDiscipline => "fs-discipline",
            Rule::CacheKeyCompleteness => "cache-key-completeness",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::ObsCoverage => "obs-coverage",
            Rule::ConstProvenance => "const-provenance",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How a file participates in the lint pass, derived from its path.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// `crates/<name>/…` member, if any (`None` for the root package).
    pub crate_name: Option<String>,
    /// Test-adjacent code: tests, benches, examples, figure binaries, and
    /// the figure-rendering `bench` crate. Exempt from the library rules.
    pub test_like: bool,
    /// Library source (under a `src/`, not a binary or test).
    pub lib_src: bool,
    /// A crate root `lib.rs` subject to the `lint-header` rule.
    pub is_crate_root: bool,
    /// File stem (`units` for `units.rs`).
    pub stem: String,
    /// Excluded from scanning entirely (shims, the linter itself, target).
    pub skip: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path (forward slashes).
    pub fn classify(path: &str) -> FileClass {
        let comps: Vec<&str> = path.split('/').collect();
        let stem = comps
            .last()
            .unwrap_or(&"")
            .trim_end_matches(".rs")
            .to_string();
        let crate_name = if comps.first() == Some(&"crates") && comps.len() > 2 {
            comps.get(1).map(|s| s.to_string())
        } else {
            None
        };
        // shims/ vendor external APIs (criterion legitimately uses
        // Instant::now); the linter's own sources mention every banned
        // pattern by name.
        let skip = comps.first() == Some(&"shims")
            || comps.first() == Some(&"target")
            || crate_name.as_deref() == Some("xtask");
        let test_like = comps
            .iter()
            .any(|c| matches!(*c, "tests" | "benches" | "examples" | "bin" | "figs"))
            || crate_name.as_deref() == Some("bench")
            || stem.starts_with("fig");
        let lib_src = !test_like && comps.contains(&"src");
        let is_crate_root = stem == "lib"
            && (path == "src/lib.rs"
                || (comps.len() == 4
                    && comps[0] == "crates"
                    && comps[2] == "src"
                    && comps[3] == "lib.rs"));
        FileClass {
            path: path.to_string(),
            crate_name,
            test_like,
            lib_src,
            is_crate_root,
            stem,
            skip,
        }
    }
}

/// Lints one file's source text. `path` must be workspace-relative with
/// forward slashes; it selects which rules apply (see [`FileClass`]).
///
/// Single-file linting runs both phases but can only resolve structs
/// defined in the same file; use [`lint_sources`] to let the graph rules
/// see across files.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    lint_sources(&[(path.to_string(), source.to_string())])
}

/// Lints a set of files together, letting the graph rules resolve structs
/// and impls across file boundaries. Each entry is a workspace-relative
/// path (forward slashes) plus the file's source text. Diagnostics come
/// back sorted by file, then line, then rule order.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut analyses = Vec::new();
    for (path, source) in files {
        let class = FileClass::classify(path);
        if class.skip {
            continue;
        }
        let lines = sanitize::split_lines(source);
        diags.extend(rules::scan(&class, &lines));
        let allows = rules::collect_allows(&lines);
        let tokens = lexer::lex(source);
        let graph = items::parse(&tokens);
        analyses.push(rules_graph::FileAnalysis {
            class,
            tokens,
            graph,
            allows,
        });
    }
    diags.extend(rules_graph::scan_workspace(&analyses));
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule as usize).cmp(&(&b.file, b.line, b.rule as usize))
    });
    diags
}

/// Renders ready-to-paste `lint:allow` lines for a batch of diagnostics
/// (the `lint --fix-allow` helper): one block per finding with the comment
/// to place on (or above) the flagged line, carrying a justification stub
/// that review is expected to replace with the actual reason.
pub fn render_fix_allow(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}:{}\n    // lint:allow({}) TODO: one-line justification\n",
            d.file,
            d.line,
            d.rule.name()
        ));
    }
    if diags.is_empty() {
        out.push_str("nothing to allow: lint is clean\n");
    }
    out
}

/// Extracts the per-rule counts from a lint `--json` report (the committed
/// `lint_baseline.json`). Hand-rolled like the writer: looks for
/// `"<rule>": <count>` after the `"by_rule"` marker. Unknown or absent
/// rules default to 0 so adding a rule never breaks an old baseline.
pub fn parse_baseline_counts(json: &str) -> std::collections::BTreeMap<String, usize> {
    let mut counts = std::collections::BTreeMap::new();
    let region = match json.find("\"by_rule\"") {
        Some(pos) => &json[pos..],
        None => return counts,
    };
    let region = &region[..region.find('}').map(|p| p + 1).unwrap_or(region.len())];
    for rule in Rule::ALL {
        let needle = format!("\"{}\":", rule.name());
        if let Some(pos) = region.find(&needle) {
            let digits: String = region[pos + needle.len()..]
                .chars()
                .skip_while(|c| c.is_whitespace())
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let Ok(n) = digits.parse::<usize>() {
                counts.insert(rule.name().to_string(), n);
            }
        }
    }
    counts
}

/// Recursively collects the workspace `.rs` files eligible for linting,
/// sorted for deterministic output.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "benches", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints every eligible workspace file under `root`. Returns the number of
/// files scanned and all diagnostics, sorted by file then line. All files
/// are analyzed together so the graph rules can match a `CacheKey` impl in
/// one file to its struct in another.
pub fn lint_workspace(root: &Path) -> std::io::Result<(usize, Vec<Diagnostic>)> {
    let mut sources = Vec::new();
    for path in collect_workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        if FileClass::classify(&rel).skip {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        sources.push((rel, source));
    }
    let scanned = sources.len();
    Ok((scanned, lint_sources(&sources)))
}
