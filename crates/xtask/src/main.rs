//! `cargo xtask` — workspace automation CLI.
//!
//! Commands:
//!
//! - `lint [--json] [--fix-allow] [--baseline <path>]` — run the
//!   carbon-accounting static-analysis pass over the workspace; exits
//!   non-zero when any violation is found. `--json` emits machine-readable
//!   diagnostics with per-rule counts so CI can diff rule counts across
//!   PRs. `--fix-allow` prints ready-to-paste `lint:allow` comments for
//!   every finding. `--baseline <path>` compares per-rule counts against a
//!   committed `lint --json` report and fails only on increases, so a
//!   grandfathered count can burn down without blocking unrelated PRs.
//! - `perf --check [--baseline <path>] [--current <path>]` — the
//!   perf-trajectory regression gate. Compares a bench report against the
//!   committed `BENCH_par.json` with noise-aware per-row thresholds (see
//!   [`xtask::perf`]). Without `--current` it reruns `bench_suite` via
//!   cargo and compares the fresh measurement. Skips (and passes) when the
//!   baseline was recorded on a different host or schema version.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{lint_workspace, parse_baseline_counts, perf, render_fix_allow, Diagnostic, Rule};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let json = args.iter().any(|a| a == "--json");
            let fix_allow = args.iter().any(|a| a == "--fix-allow");
            let mut baseline: Option<PathBuf> = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--json" | "--fix-allow" => {}
                    "--baseline" => match rest.next() {
                        Some(path) => baseline = Some(PathBuf::from(path)),
                        None => {
                            eprintln!("xtask lint: --baseline needs a path");
                            return ExitCode::from(2);
                        }
                    },
                    unknown => {
                        eprintln!("xtask lint: unknown flag `{unknown}`");
                        return ExitCode::from(2);
                    }
                }
            }
            lint(json, fix_allow, baseline)
        }
        Some("perf") => {
            let mut check = false;
            let mut baseline: Option<PathBuf> = None;
            let mut current: Option<PathBuf> = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--check" => check = true,
                    "--baseline" => match rest.next() {
                        Some(path) => baseline = Some(PathBuf::from(path)),
                        None => {
                            eprintln!("xtask perf: --baseline needs a path");
                            return ExitCode::from(2);
                        }
                    },
                    "--current" => match rest.next() {
                        Some(path) => current = Some(PathBuf::from(path)),
                        None => {
                            eprintln!("xtask perf: --current needs a path");
                            return ExitCode::from(2);
                        }
                    },
                    unknown => {
                        eprintln!("xtask perf: unknown flag `{unknown}`");
                        return ExitCode::from(2);
                    }
                }
            }
            if !check {
                eprintln!("xtask perf: only `--check` mode exists; pass --check");
                return ExitCode::from(2);
            }
            perf_check(baseline, current)
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo xtask lint [--json] [--fix-allow] [--baseline <path>]\n       \
                     cargo xtask perf --check [--baseline <path>] [--current <path>]";

fn lint(json: bool, fix_allow: bool, baseline: Option<PathBuf>) -> ExitCode {
    let root = workspace_root();
    let (scanned, diags) = match lint_workspace(&root) {
        Ok(result) => result,
        Err(err) => {
            eprintln!("xtask lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", render_json(scanned, &diags));
    } else if fix_allow {
        print!("{}", render_fix_allow(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            eprintln!("lint clean: {scanned} files scanned, 0 violations");
        } else {
            eprintln!(
                "lint: {} violation(s) across {} file(s) ({} scanned)",
                diags.len(),
                diags
                    .iter()
                    .map(|d| d.file.as_str())
                    .collect::<std::collections::BTreeSet<_>>()
                    .len(),
                scanned
            );
        }
    }
    if let Some(path) = baseline {
        return gate_on_baseline(&path, &diags);
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Compares per-rule counts against the committed baseline report: any rule
/// whose count *increased* fails the build; matching or shrinking counts
/// pass, so a grandfathered backlog can burn down without re-blessing.
fn gate_on_baseline(path: &PathBuf, diags: &[Diagnostic]) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("xtask lint: cannot read baseline {}: {err}", path.display());
            return ExitCode::from(2);
        }
    };
    let allowed = parse_baseline_counts(&text);
    let mut current: BTreeMap<&str, usize> = BTreeMap::new();
    for d in diags {
        *current.entry(d.rule.name()).or_insert(0) += 1;
    }
    let mut regressed = false;
    for rule in Rule::ALL {
        let now = current.get(rule.name()).copied().unwrap_or(0);
        let base = allowed.get(rule.name()).copied().unwrap_or(0);
        if now > base {
            eprintln!(
                "lint baseline: rule `{}` went {base} -> {now} (+{})",
                rule.name(),
                now - base
            );
            regressed = true;
        }
    }
    if regressed {
        eprintln!(
            "lint baseline: diagnostic count increased vs {}; fix the findings \
             or annotate with lint:allow + justification",
            path.display()
        );
        ExitCode::FAILURE
    } else {
        eprintln!(
            "lint baseline: no rule count increased vs {}",
            path.display()
        );
        ExitCode::SUCCESS
    }
}

/// Runs the perf-trajectory gate: measures (or loads) a current bench
/// report and compares it row by row against the committed baseline.
fn perf_check(baseline: Option<PathBuf>, current: Option<PathBuf>) -> ExitCode {
    let root = workspace_root();
    let baseline_path = baseline.unwrap_or_else(|| root.join("BENCH_par.json"));
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!(
                "xtask perf: cannot read baseline {}: {err}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let current_path = match current {
        Some(path) => path,
        None => {
            let out_dir = root.join("target").join("perf");
            if let Err(err) = std::fs::create_dir_all(&out_dir) {
                eprintln!("xtask perf: cannot create {}: {err}", out_dir.display());
                return ExitCode::from(2);
            }
            let out = out_dir.join("BENCH_current.json");
            eprintln!("xtask perf: measuring (bench_suite --reps 3)...");
            let status = std::process::Command::new(
                std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string()),
            )
            .args([
                "run",
                "--release",
                "-p",
                "sustain-bench",
                "--bin",
                "bench_suite",
                "--",
            ])
            .args(["--reps", "3", "--out"])
            .arg(&out)
            .current_dir(&root)
            .status();
            match status {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    eprintln!("xtask perf: bench_suite failed with {status}");
                    return ExitCode::from(2);
                }
                Err(err) => {
                    eprintln!("xtask perf: cannot launch bench_suite: {err}");
                    return ExitCode::from(2);
                }
            }
            out
        }
    };
    let current_text = match std::fs::read_to_string(&current_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!(
                "xtask perf: cannot read current report {}: {err}",
                current_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let (baseline_report, current_report) = match (
        perf::parse_bench(&baseline_text),
        perf::parse_bench(&current_text),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(err), _) => {
            eprintln!(
                "xtask perf: bad baseline {}: {err}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        (_, Err(err)) => {
            eprintln!("xtask perf: bad report {}: {err}", current_path.display());
            return ExitCode::from(2);
        }
    };
    match perf::compare(&baseline_report, &current_report) {
        perf::PerfCheck::Skipped(reason) => {
            eprintln!("perf check: skipped ({reason}); nothing to gate on");
            ExitCode::SUCCESS
        }
        perf::PerfCheck::Compared(rows) => {
            let mut regressed = 0usize;
            for (name, verdict) in &rows {
                if matches!(verdict, perf::RowVerdict::Regressed { .. }) {
                    regressed += 1;
                }
                println!("{name:<32} {verdict}");
            }
            if regressed == 0 {
                eprintln!(
                    "perf check: {} row(s) within noise of {}",
                    rows.len(),
                    baseline_path.display()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "perf check: {regressed} row(s) regressed vs {}; investigate with \
                     `all_figures --obs <dir>` (profile.txt / flame.folded) or re-bless \
                     the baseline by committing the new report",
                    baseline_path.display()
                );
                ExitCode::FAILURE
            }
        }
    }
}

/// Resolves the workspace root: two levels above this crate's manifest when
/// run via cargo, else the current directory.
fn workspace_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let path = PathBuf::from(manifest);
        if let Some(root) = path.ancestors().nth(2) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

/// Renders the machine-readable report. Hand-rolled writer: xtask is
/// deliberately dependency-free so it builds before the rest of the
/// workspace.
fn render_json(scanned: usize, diags: &[Diagnostic]) -> String {
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for rule in Rule::ALL {
        by_rule.insert(rule.name(), 0);
    }
    for d in diags {
        *by_rule.entry(d.rule.name()).or_insert(0) += 1;
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {scanned},\n"));
    out.push_str(&format!("  \"violations\": {},\n", diags.len()));
    out.push_str("  \"by_rule\": {");
    for (i, (rule, count)) in by_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{rule}\": {count}"));
    }
    out.push_str("\n  },\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape_json(&d.file),
            d.line,
            d.rule,
            escape_json(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
