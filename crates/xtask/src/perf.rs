//! `cargo xtask perf` — the perf-trajectory regression gate.
//!
//! Compares a freshly measured `BENCH_par.json` (written by the
//! `bench_suite` binary) against the committed baseline, row by row, with
//! noise-aware thresholds. The gate is deliberately conservative in both
//! directions:
//!
//! - A row regresses only when the *best* current sample (`min_ms`) is
//!   slower than the baseline median by more than the noise allowance —
//!   `max(2 × baseline spread, 30% of the median, 1 ms)` — so scheduler
//!   jitter on a loaded CI box does not produce false alarms, while a real
//!   algorithmic regression (the kind that motivated this gate: a fan-out
//!   dominated for four PRs by one O(capacity) eviction scan) still trips
//!   it.
//! - Comparisons are *skipped* (not passed, not failed) when the two
//!   reports are not comparable: different `schema_version`, a different
//!   host fingerprint (available parallelism or OS), or a `--quick`
//!   baseline that carries no per-figure rows.
//!
//! Sub-millisecond rows are ignored: they measure harness overhead, not
//! workload, and their relative noise is unbounded.
//!
//! The JSON reader is hand-rolled like the rest of xtask (this crate
//! builds dependency-free, before the workspace shims).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value — just enough of the grammar for `BENCH_par.json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a byte-offset message on malformed input or trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", want as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(hex);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let len = utf8_len(b);
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("bad utf-8 at byte {pos}"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xf0..=0xf7 => 4,
        0xe0..=0xef => 3,
        0xc0..=0xdf => 2,
        _ => 1,
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

/// One timed measurement from `BENCH_par.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchRow {
    /// Median of the samples, in milliseconds.
    pub median_ms: f64,
    /// Best sample, in milliseconds.
    pub min_ms: f64,
    /// Spread of the samples (max − min), in milliseconds.
    pub spread_ms: f64,
}

/// A parsed bench report: the host fingerprint plus every named row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Layout version (absent in pre-versioned reports).
    pub schema_version: Option<u64>,
    /// `host.available_parallelism`, when stamped.
    pub parallelism: Option<u64>,
    /// `host.os`, when stamped.
    pub os: Option<String>,
    /// Whether the report came from a `--quick` run (fan-out only).
    pub quick: bool,
    /// Rows by dotted name (`fanout.serial`, `cache.cold`,
    /// `figure.fig07_waterfall.serial`, …), name-ordered.
    pub rows: BTreeMap<String, BenchRow>,
}

/// Parses a `BENCH_par.json` document into named rows.
///
/// # Errors
///
/// Returns a message when the document is not JSON or a stat block is
/// missing its `median_ms`/`min_ms`.
pub fn parse_bench(text: &str) -> Result<BenchReport, String> {
    let doc = parse_json(text)?;
    let mut rows = BTreeMap::new();
    let mut add = |name: String, stat: Option<&Json>| -> Result<(), String> {
        let Some(stat) = stat else { return Ok(()) };
        let field = |key: &str| {
            stat.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("row `{name}`: missing `{key}`"))
        };
        let samples = stat
            .get("samples_ms")
            .and_then(Json::as_arr)
            .map(|items| items.iter().filter_map(Json::as_num).collect::<Vec<f64>>())
            .unwrap_or_default();
        let spread = match (
            samples.iter().copied().reduce(f64::max),
            samples.iter().copied().reduce(f64::min),
        ) {
            (Some(max), Some(min)) => max - min,
            _ => 0.0,
        };
        rows.insert(
            name.clone(),
            BenchRow {
                median_ms: field("median_ms")?,
                min_ms: field("min_ms")?,
                spread_ms: spread,
            },
        );
        Ok(())
    };
    for (section, keys) in [
        ("fanout", &["serial", "parallel"][..]),
        ("cache", &["cold", "warm"][..]),
        ("stream", &["serial", "parallel"][..]),
        ("energy_integrate", &["clean", "faulty"][..]),
        ("des_events", &["hot", "logged"][..]),
    ] {
        for key in keys {
            add(
                format!("{section}.{key}"),
                doc.get(section).and_then(|s| s.get(key)),
            )?;
        }
    }
    for figure in doc
        .get("figures")
        .and_then(Json::as_arr)
        .unwrap_or_default()
    {
        let Some(name) = figure.get("name").and_then(Json::as_str) else {
            continue;
        };
        add(format!("{name}.serial"), figure.get("serial"))?;
        add(format!("{name}.parallel"), figure.get("parallel"))?;
    }
    Ok(BenchReport {
        schema_version: doc
            .get("schema_version")
            .and_then(Json::as_num)
            .map(|v| v as u64),
        parallelism: doc
            .get("host")
            .and_then(|h| h.get("available_parallelism"))
            .and_then(Json::as_num)
            .map(|v| v as u64),
        os: doc
            .get("host")
            .and_then(|h| h.get("os"))
            .and_then(Json::as_str)
            .map(str::to_owned),
        quick: doc.get("quick") == Some(&Json::Bool(true)),
        rows,
    })
}

/// The outcome of one row comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum RowVerdict {
    /// Within the noise allowance (or faster).
    Ok,
    /// Slower than the allowance permits.
    Regressed {
        /// The failing row's allowance, in milliseconds.
        allowed_ms: f64,
    },
    /// Present in the baseline but missing from the current report.
    Unmatched,
    /// Present in the current report but not the baseline — a freshly
    /// added bench row. Informational only: a new row has no history to
    /// regress against, and failing on it would force every bench
    /// addition to land in two commits (row first, baseline second).
    NewRow,
    /// Below the measurement floor in the baseline — too noisy to gate on.
    TooSmall,
}

impl fmt::Display for RowVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowVerdict::Ok => write!(f, "ok"),
            RowVerdict::Regressed { allowed_ms } => {
                write!(f, "REGRESSED (allowed {allowed_ms:.3} ms)")
            }
            RowVerdict::Unmatched => write!(f, "unmatched (missing from current run)"),
            RowVerdict::NewRow => write!(f, "new row (no baseline; informational)"),
            RowVerdict::TooSmall => write!(f, "skipped (sub-ms row)"),
        }
    }
}

/// Why a whole comparison was skipped.
#[derive(Debug, Clone, PartialEq)]
pub enum Skip {
    /// The two reports use different layouts.
    SchemaMismatch {
        /// Baseline version (`None` = pre-versioned).
        baseline: Option<u64>,
        /// Current version.
        current: Option<u64>,
    },
    /// The reports were measured on different hosts.
    HostMismatch {
        /// Baseline fingerprint, rendered.
        baseline: String,
        /// Current fingerprint, rendered.
        current: String,
    },
    /// The baseline is a `--quick` smoke run with no per-figure rows.
    QuickBaseline,
}

impl fmt::Display for Skip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Skip::SchemaMismatch { baseline, current } => write!(
                f,
                "schema_version mismatch (baseline {baseline:?}, current {current:?})"
            ),
            Skip::HostMismatch { baseline, current } => write!(
                f,
                "host fingerprint mismatch (baseline {baseline}, current {current})"
            ),
            Skip::QuickBaseline => write!(f, "baseline is a --quick smoke run"),
        }
    }
}

/// The full comparison: either skipped with a reason, or per-row verdicts.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfCheck {
    /// Not comparable; the gate passes vacuously.
    Skipped(Skip),
    /// Compared; regressions (if any) are in the rows.
    Compared(Vec<(String, RowVerdict)>),
}

impl PerfCheck {
    /// Whether the gate passes (skips pass vacuously).
    pub fn passed(&self) -> bool {
        match self {
            PerfCheck::Skipped(_) => true,
            PerfCheck::Compared(rows) => !rows
                .iter()
                .any(|(_, v)| matches!(v, RowVerdict::Regressed { .. })),
        }
    }
}

/// Rows at or under this baseline median measure harness overhead, not
/// workload; they are reported but never gated on.
const FLOOR_MS: f64 = 1.0;

/// The per-row noise allowance added to the baseline median: twice the
/// baseline's observed sample spread, or 30% of its median, or the
/// measurement floor — whichever is largest.
fn allowance_ms(baseline: &BenchRow) -> f64 {
    (2.0 * baseline.spread_ms)
        .max(baseline.median_ms * 0.3)
        .max(FLOOR_MS)
}

/// Compares `current` against `baseline` row by row.
pub fn compare(baseline: &BenchReport, current: &BenchReport) -> PerfCheck {
    if baseline.schema_version != current.schema_version {
        return PerfCheck::Skipped(Skip::SchemaMismatch {
            baseline: baseline.schema_version,
            current: current.schema_version,
        });
    }
    let fingerprint =
        |r: &BenchReport| format!("{:?}/{:?}", r.parallelism, r.os.as_deref().unwrap_or("?"));
    if baseline.parallelism != current.parallelism || baseline.os != current.os {
        return PerfCheck::Skipped(Skip::HostMismatch {
            baseline: fingerprint(baseline),
            current: fingerprint(current),
        });
    }
    if baseline.quick {
        return PerfCheck::Skipped(Skip::QuickBaseline);
    }
    let mut verdicts = Vec::new();
    for (name, base) in &baseline.rows {
        let verdict = match current.rows.get(name) {
            None => RowVerdict::Unmatched,
            Some(_) if base.median_ms <= FLOOR_MS => RowVerdict::TooSmall,
            Some(cur) => {
                let allowed = base.median_ms + allowance_ms(base);
                // Gate on the *best* current sample: any single clean run
                // proves the code is still fast; all samples slow means a
                // real regression (or a hopelessly loaded box, which the
                // spread term absorbs).
                if cur.min_ms > allowed {
                    RowVerdict::Regressed {
                        allowed_ms: allowed,
                    }
                } else {
                    RowVerdict::Ok
                }
            }
        };
        verdicts.push((name.clone(), verdict));
    }
    for name in current.rows.keys() {
        if !baseline.rows.contains_key(name) {
            verdicts.push((name.clone(), RowVerdict::NewRow));
        }
    }
    PerfCheck::Compared(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(version: Option<u64>, rows: &[(&str, f64, f64, f64)]) -> BenchReport {
        BenchReport {
            schema_version: version,
            parallelism: Some(4),
            os: Some("linux".to_string()),
            quick: false,
            rows: rows
                .iter()
                .map(|&(name, median_ms, min_ms, spread_ms)| {
                    (
                        name.to_string(),
                        BenchRow {
                            median_ms,
                            min_ms,
                            spread_ms,
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn json_parser_round_trips_bench_shapes() {
        let doc = parse_json(
            "{\"a\": 1.5, \"b\": [1, 2e3], \"c\": {\"d\": \"x\\n\"}, \
             \"e\": null, \"f\": true}",
        )
        .expect("parses");
        assert_eq!(doc.get("a").and_then(Json::as_num), Some(1.5));
        assert_eq!(
            doc.get("b").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            doc.get("c").and_then(|c| c.get("d")).and_then(Json::as_str),
            Some("x\n")
        );
        assert_eq!(doc.get("e"), Some(&Json::Null));
        assert_eq!(doc.get("f"), Some(&Json::Bool(true)));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{}extra").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn bench_rows_are_extracted_with_spread() {
        let report = parse_bench(
            "{\"schema_version\": 2, \"host\": {\"available_parallelism\": 8, \
             \"os\": \"linux\"}, \"quick\": false, \"fanout\": {\"serial\": \
             {\"median_ms\": 10.0, \"min_ms\": 9.0, \"samples_ms\": [9.0, 10.0, 12.0]}}, \
             \"figures\": [{\"name\": \"figure.f\", \"serial\": \
             {\"median_ms\": 5.0, \"min_ms\": 4.0, \"samples_ms\": [4.0, 5.0]}}]}",
        )
        .expect("parses");
        assert_eq!(report.schema_version, Some(2));
        assert_eq!(report.parallelism, Some(8));
        assert_eq!(report.os.as_deref(), Some("linux"));
        let fanout = report.rows.get("fanout.serial").expect("fanout row");
        assert!((fanout.spread_ms - 3.0).abs() < 1e-12);
        assert!(report.rows.contains_key("figure.f.serial"));
    }

    #[test]
    fn unversioned_seed_reports_still_parse() {
        let report = parse_bench(
            "{\"bench\": \"par_fanout\", \"quick\": false, \"fanout\": {\"serial\": \
             {\"median_ms\": 140.0, \"min_ms\": 133.0, \"samples_ms\": [140.0, 143.0, 133.0]}}}",
        )
        .expect("parses");
        assert_eq!(report.schema_version, None);
        assert_eq!(report.parallelism, None);
    }

    #[test]
    fn schema_mismatch_skips() {
        let base = report(None, &[("fanout.serial", 100.0, 95.0, 5.0)]);
        let cur = report(Some(2), &[("fanout.serial", 100.0, 95.0, 5.0)]);
        let check = compare(&base, &cur);
        assert!(matches!(
            check,
            PerfCheck::Skipped(Skip::SchemaMismatch { .. })
        ));
        assert!(check.passed());
    }

    #[test]
    fn host_mismatch_skips() {
        let base = report(Some(2), &[("fanout.serial", 100.0, 95.0, 5.0)]);
        let mut cur = base.clone();
        cur.parallelism = Some(64);
        assert!(matches!(
            compare(&base, &cur),
            PerfCheck::Skipped(Skip::HostMismatch { .. })
        ));
    }

    #[test]
    fn quick_baseline_skips() {
        let mut base = report(Some(2), &[("fanout.serial", 100.0, 95.0, 5.0)]);
        base.quick = true;
        let cur = report(Some(2), &[("fanout.serial", 100.0, 95.0, 5.0)]);
        assert!(matches!(
            compare(&base, &cur),
            PerfCheck::Skipped(Skip::QuickBaseline)
        ));
    }

    #[test]
    fn within_noise_passes_and_regression_fails() {
        let base = report(Some(2), &[("fanout.serial", 100.0, 95.0, 5.0)]);
        // Allowance: max(2*5, 0.3*100, 1) = 30 -> threshold 130.
        let fine = report(Some(2), &[("fanout.serial", 129.0, 125.0, 4.0)]);
        assert!(compare(&base, &fine).passed());
        let slow = report(Some(2), &[("fanout.serial", 140.0, 131.0, 4.0)]);
        let check = compare(&base, &slow);
        assert!(!check.passed());
        let PerfCheck::Compared(rows) = check else {
            panic!("expected comparison");
        };
        assert!(matches!(rows[0].1, RowVerdict::Regressed { .. }));
    }

    #[test]
    fn one_fast_sample_is_enough() {
        let base = report(Some(2), &[("fanout.serial", 100.0, 95.0, 5.0)]);
        // Median is awful (loaded box) but the best sample is clean.
        let noisy = report(Some(2), &[("fanout.serial", 400.0, 101.0, 300.0)]);
        assert!(compare(&base, &noisy).passed());
    }

    #[test]
    fn sub_millisecond_rows_never_gate() {
        let base = report(Some(2), &[("figure.tiny.serial", 0.005, 0.004, 0.01)]);
        let cur = report(Some(2), &[("figure.tiny.serial", 0.9, 0.8, 0.1)]);
        let PerfCheck::Compared(rows) = compare(&base, &cur) else {
            panic!("expected comparison");
        };
        assert_eq!(rows[0].1, RowVerdict::TooSmall);
        assert!(compare(&base, &cur).passed());
    }

    #[test]
    fn unmatched_rows_are_reported_not_failed() {
        let base = report(Some(2), &[("fanout.serial", 100.0, 95.0, 5.0)]);
        let cur = report(Some(2), &[("cache.cold", 50.0, 48.0, 2.0)]);
        let check = compare(&base, &cur);
        assert!(check.passed());
        let PerfCheck::Compared(rows) = check else {
            panic!("expected comparison");
        };
        assert_eq!(rows.len(), 2);
        // Baseline-only row: unmatched. Current-only row: a new bench row,
        // reported as informational rather than lumped in with unmatched.
        assert_eq!(
            rows.iter()
                .find(|(n, _)| n == "fanout.serial")
                .map(|r| &r.1),
            Some(&RowVerdict::Unmatched)
        );
        assert_eq!(
            rows.iter().find(|(n, _)| n == "cache.cold").map(|r| &r.1),
            Some(&RowVerdict::NewRow)
        );
    }

    #[test]
    fn new_bench_rows_are_informational() {
        let base = report(Some(2), &[("fanout.serial", 100.0, 95.0, 5.0)]);
        let cur = report(
            Some(2),
            &[
                ("fanout.serial", 100.0, 95.0, 5.0),
                ("energy_integrate.clean", 4.0, 3.8, 0.3),
            ],
        );
        let check = compare(&base, &cur);
        assert!(check.passed(), "a new row must never fail the gate");
        let PerfCheck::Compared(rows) = check else {
            panic!("expected comparison");
        };
        assert_eq!(
            rows.iter()
                .find(|(n, _)| n == "energy_integrate.clean")
                .map(|r| &r.1),
            Some(&RowVerdict::NewRow)
        );
    }

    #[test]
    fn energy_integrate_rows_parse() {
        let report = parse_bench(
            "{\"schema_version\": 2, \"host\": {\"available_parallelism\": 8, \
             \"os\": \"linux\"}, \"quick\": false, \"energy_integrate\": {\
             \"samples\": 1000000, \"clean\": {\"median_ms\": 4.0, \"min_ms\": 3.8}, \
             \"faulty\": {\"median_ms\": 5.0, \"min_ms\": 4.7}}}",
        )
        .expect("parses");
        assert!(report.rows.contains_key("energy_integrate.clean"));
        assert!(report.rows.contains_key("energy_integrate.faulty"));
    }

    #[test]
    fn des_event_rows_parse() {
        let report = parse_bench(
            "{\"schema_version\": 2, \"host\": {\"available_parallelism\": 8, \
             \"os\": \"linux\"}, \"quick\": false, \"des_events\": {\
             \"events\": 1000000, \"tokens\": 1024, \
             \"hot\": {\"median_ms\": 60.0, \"min_ms\": 58.0}, \
             \"logged\": {\"median_ms\": 75.0, \"min_ms\": 72.0}}}",
        )
        .expect("parses");
        assert!(report.rows.contains_key("des_events.hot"));
        assert!(report.rows.contains_key("des_events.logged"));
    }
}
