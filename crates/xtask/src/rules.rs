//! The eight carbon-accounting lint rules.
//!
//! Each rule scans the sanitized code channel of a file (see
//! [`crate::sanitize`]) with simple lexical state: brace depth,
//! `#[cfg(test)]` module regions, and in-progress `pub fn` signatures.
//! Any diagnostic can be suppressed by a `// lint:allow(<rule>)` comment on
//! the same line or on a comment-only line immediately above it; by
//! convention the comment carries a one-line justification.

use crate::sanitize::{is_ident_char, LineView};
use crate::{Diagnostic, FileClass, Rule};

/// Crates whose simulations must stay seed-reproducible (rules 4 and the
/// graph rules `determinism-taint` / `const-provenance`).
pub(crate) const SIM_CRATES: &[&str] = &[
    "fleet",
    "edge",
    "telemetry",
    "obs",
    "par",
    "cache",
    "stream",
    "prof",
    "des",
];

/// Crates allowed to touch raw thread primitives (rule 5 carve-out):
/// `sustain-par` owns the scoped-thread pool, `sustain-obs` needs threads in
/// its concurrency tests and recorder internals. Everything else must fan
/// out through `sustain_par::ParPool`, whose submission-order join and
/// per-task seeding keep figure output byte-identical at any thread count.
const THREAD_CRATES: &[&str] = &["par", "obs"];

/// Raw thread primitives banned outside [`THREAD_CRATES`] (rule 5).
const THREAD_PRIMITIVES: &[&str] = &["thread::spawn", "thread::scope"];

/// Module stems allowed to hold bare physical constants (rule 6 and the
/// graph rule `const-provenance`).
pub(crate) const CONSTANT_MODULES: &[&str] = &["constants", "oss", "units"];

/// Unit suffixes that mark a raw `f64` as dimensioned (rule 1), with the
/// newtype each should use instead.
const UNIT_SUFFIXES: &[(&str, &str)] = &[
    ("_joules", "Energy"),
    ("_kwh", "Energy"),
    ("_mwh", "Energy"),
    ("_wh", "Energy"),
    ("_watts", "Power"),
    ("_kg", "Co2e"),
    ("_co2e", "Co2e"),
    ("_gco2", "Co2e"),
];

/// Unit-newtype constructors whose bare-literal arguments are physical
/// constants in disguise (rule 6). Time/data constructors are deliberately
/// absent: durations and volumes are scenario parameters, not constants.
const CARBON_CTORS: &[&str] = &[
    "from_joules",
    "from_watt_hours",
    "from_kilowatt_hours",
    "from_megawatt_hours",
    "from_gigawatt_hours",
    "from_watts",
    "from_kilowatts",
    "from_megawatts",
    "from_grams",
    "from_kilograms",
    "from_tonnes",
    "from_grams_per_kwh",
];

/// Nondeterminism sources banned from simulation crates (rule 4).
const NONDETERMINISM: &[(&str, &str)] = &[
    (
        "thread_rng",
        "seed an explicit StdRng (seed_from_u64) instead",
    ),
    (
        "Instant::now",
        "inject simulated time instead of wall-clock time",
    ),
    (
        "SystemTime",
        "inject simulated time instead of wall-clock time",
    ),
    // `HashMap` used to be a blanket entry here; the graph rule
    // `determinism-taint` (rules_graph.rs) subsumes it with an import-seeded
    // taint pass that flags *iteration* of unordered collections instead of
    // mere ownership, so point lookups no longer need an allow.
];

/// Filesystem write primitives banned outside `crates/cache` and the
/// sanctioned sites (rule 8). Cached figures and replica reports must be
/// re-derivable from their content-addressed entries alone, so persistence
/// is routed through `sustain_cache::DiskStore` — whose versioned,
/// checksummed entries degrade to a miss instead of serving stale bytes —
/// rather than scattered ad-hoc writes.
const FS_WRITE_PRIMITIVES: &[&str] = &[
    "fs::write",
    "File::create",
    "OpenOptions",
    "create_dir",
    "create_dir_all",
    "fs::rename",
    "fs::remove_file",
    "fs::remove_dir_all",
];

/// The sanctioned write sites outside `crates/cache` (rule 8): the obs
/// exporter in `all_figures` and the benchmark report in `bench_suite`.
/// Both write *derived* artifacts a rerun regenerates byte-identically.
const FS_SANCTIONED_FILES: &[&str] = &[
    "crates/bench/src/bin/all_figures.rs",
    "crates/bench/src/bin/bench_suite.rs",
];

/// An in-progress `pub fn` signature (may span multiple lines).
struct FnSig {
    name: String,
    start_line: usize,
}

/// Runs every line-oriented rule plus the whole-file header rule.
pub(crate) fn scan(class: &FileClass, lines: &[LineView]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let allows = collect_allows(lines);

    if class.is_crate_root {
        let has_forbid = lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
        if !has_forbid && !allowed(&allows, 0, Rule::LintHeader) {
            diags.push(Diagnostic {
                file: class.path.clone(),
                line: 1,
                rule: Rule::LintHeader,
                message: "crate root must carry #![forbid(unsafe_code)] alongside \
                          deny(missing_docs)"
                    .into(),
            });
        }
    }

    let mut depth: i64 = 0;
    let mut pending_cfg_test = false;
    let mut test_region: Option<i64> = None;
    let mut sig: Option<FnSig> = None;

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        let in_test = test_region.is_some();
        let depth_before = depth;
        depth += code.matches('{').count() as i64 - code.matches('}').count() as i64;

        // --- region bookkeeping -------------------------------------------
        if let Some(base) = test_region {
            if depth <= base {
                test_region = None;
            }
        }
        if pending_cfg_test {
            if code.contains("mod ") && code.contains('{') {
                test_region = Some(depth_before);
                pending_cfg_test = false;
            } else if code.contains("mod ") && code.contains(';') {
                // `#[cfg(test)] mod x;` — the module lives in its own file,
                // which the walker classifies separately.
                pending_cfg_test = false;
            } else if !code.trim().is_empty() && !code.trim_start().starts_with("#[") {
                pending_cfg_test = false;
            }
        }
        if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }

        if in_test {
            continue;
        }

        let push = |rule: Rule, message: String, diags: &mut Vec<Diagnostic>| {
            if !allowed(&allows, idx, rule) {
                diags.push(Diagnostic {
                    file: class.path.clone(),
                    line: lineno,
                    rule,
                    message,
                });
            }
        };

        // --- rule 1: unit-leak --------------------------------------------
        let mut sig_line = false;
        if !class.test_like && class.stem != "units" {
            if sig.is_none() {
                if let Some(name) = pub_fn_name(code) {
                    sig = Some(FnSig {
                        name,
                        start_line: lineno,
                    });
                }
            }
            if let Some(s) = &sig {
                sig_line = true;
                let exempt = s.name.starts_with("from_") || s.name.starts_with("as_");
                if !exempt {
                    for (ident, suggestion) in f64_params_with_unit_suffix(code) {
                        push(
                            Rule::UnitLeak,
                            format!(
                                "raw f64 parameter/field `{ident}` carries a unit \
                                 suffix; use sustain_core::units::{suggestion}"
                            ),
                            &mut diags,
                        );
                    }
                    if code.contains("-> f64") {
                        if let Some((_, suggestion)) = unit_suffix_of(&s.name) {
                            push(
                                Rule::UnitLeak,
                                format!(
                                    "pub fn `{}` returns raw f64 but its name is \
                                     unit-suffixed; return sustain_core::units::{}",
                                    s.name, suggestion
                                ),
                                &mut diags,
                            );
                        }
                    }
                }
                let _ = s.start_line;
                if code.contains('{') || code.contains(';') {
                    sig = None;
                }
            }
            if !sig_line && code.trim_start().starts_with("pub ") {
                for (ident, suggestion) in f64_params_with_unit_suffix(code) {
                    push(
                        Rule::UnitLeak,
                        format!(
                            "raw f64 parameter/field `{ident}` carries a unit \
                             suffix; use sustain_core::units::{suggestion}"
                        ),
                        &mut diags,
                    );
                }
            }
        }

        // --- rule 2: float-eq ---------------------------------------------
        if !class.test_like && class.stem != "units" {
            for op in float_eq_ops(code) {
                push(
                    Rule::FloatEq,
                    format!(
                        "exact float comparison `{op}`; use \
                         sustain_core::units::approx_eq"
                    ),
                    &mut diags,
                );
            }
        }

        // --- rule 3: panic-discipline -------------------------------------
        if class.lib_src && !class.test_like {
            if code.contains(".unwrap()") {
                push(
                    Rule::PanicDiscipline,
                    "unwrap() in library code; return Result or justify with \
                     lint:allow(panic-discipline)"
                        .into(),
                    &mut diags,
                );
            }
            if code.contains(".expect(") {
                push(
                    Rule::PanicDiscipline,
                    "expect() in library code; return Result or justify with \
                     lint:allow(panic-discipline)"
                        .into(),
                    &mut diags,
                );
            }
            if has_word(code, "panic!") {
                push(
                    Rule::PanicDiscipline,
                    "panic! in library code; return Result or justify with \
                     lint:allow(panic-discipline)"
                        .into(),
                    &mut diags,
                );
            }
            if let Some(index) = literal_index(code) {
                push(
                    Rule::PanicDiscipline,
                    format!(
                        "indexing by literal `[{index}]` can panic; use .get({index}) \
                         or destructure"
                    ),
                    &mut diags,
                );
            }
        }

        // --- rule 4: determinism ------------------------------------------
        if !class.test_like
            && class
                .crate_name
                .as_deref()
                .is_some_and(|c| SIM_CRATES.contains(&c))
        {
            for (pat, fix) in NONDETERMINISM {
                if *pat == "Instant::now" && wall_clock_module(class) {
                    // The one sanctioned wall-clock site: sustain-obs's
                    // `ClockSource` implementations. Everything else must
                    // inject time through that trait.
                    continue;
                }
                if has_word(code, pat) {
                    push(
                        Rule::Determinism,
                        format!("`{pat}` breaks seed-reproducibility in a simulation crate; {fix}"),
                        &mut diags,
                    );
                }
            }
        }

        // --- rule 5: thread-discipline ------------------------------------
        if !class.test_like
            && !class
                .crate_name
                .as_deref()
                .is_some_and(|c| THREAD_CRATES.contains(&c))
        {
            for pat in THREAD_PRIMITIVES {
                if has_word(code, pat) {
                    push(
                        Rule::ThreadDiscipline,
                        format!(
                            "`{pat}` outside crates/par and crates/obs; fan out through \
                             sustain_par::ParPool so joins stay deterministic"
                        ),
                        &mut diags,
                    );
                }
            }
        }

        // --- rule 8: fs-discipline ----------------------------------------
        // Applies to binaries too (unlike the library-only rules): any
        // non-test write outside crates/cache must be a sanctioned site or
        // carry an explicit allow.
        if class.crate_name.as_deref() != Some("cache")
            && !FS_SANCTIONED_FILES.contains(&class.path.as_str())
            && !path_is_test_code(&class.path)
        {
            for pat in FS_WRITE_PRIMITIVES {
                if has_word(code, pat) {
                    push(
                        Rule::FsDiscipline,
                        format!(
                            "`{pat}` writes the filesystem outside crates/cache; persist \
                             through sustain_cache::DiskStore or justify with \
                             lint:allow(fs-discipline)"
                        ),
                        &mut diags,
                    );
                }
            }
        }

        // --- rule 6: magic-constant ---------------------------------------
        if !class.test_like && !CONSTANT_MODULES.contains(&class.stem.as_str()) {
            for (ctor, literal) in ctor_literal_args(code) {
                push(
                    Rule::MagicConstant,
                    format!(
                        "bare literal `{literal}` in `{ctor}(..)`; name it in a \
                         `constants` module with a provenance comment"
                    ),
                    &mut diags,
                );
            }
        }
    }

    diags
}

/// True for paths under a `tests`, `benches`, or `examples` directory
/// (rule 8 carve-out): test code writes temp fixtures freely. Narrower
/// than [`FileClass::test_like`], which also covers `bin` and figure
/// sources — binaries are exactly where write discipline matters.
fn path_is_test_code(path: &str) -> bool {
    path.split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples"))
}

/// True for the one module allowed to read the wall clock (rule 4
/// carve-out): `crates/obs/src/clock.rs`, where `WallClock` implements
/// `ClockSource`. Exports stay deterministic because simulations use
/// `SimClock`; the wall clock exists only for real profiling runs.
fn wall_clock_module(class: &FileClass) -> bool {
    class.crate_name.as_deref() == Some("obs") && class.stem == "clock"
}

// ---------------------------------------------------------------------------
// lint:allow
// ---------------------------------------------------------------------------

/// Effective allow-tags per line: a tag on a code line covers that line; a
/// tag on a comment-only line carries forward to the next code line. Shared
/// with the graph rules ([`crate::rules_graph`]) so suppression semantics
/// are identical in both phases.
pub(crate) fn collect_allows(lines: &[LineView]) -> Vec<Vec<String>> {
    let mut allows = Vec::with_capacity(lines.len());
    let mut carried: Vec<String> = Vec::new();
    for line in lines {
        let own = parse_allow_tags(&line.comment);
        let mut effective = own.clone();
        effective.extend(carried.iter().cloned());
        if line.is_comment_only() {
            carried.extend(own);
        } else {
            carried.clear();
        }
        allows.push(effective);
    }
    allows
}

pub(crate) fn allowed(allows: &[Vec<String>], idx: usize, rule: Rule) -> bool {
    allows
        .get(idx)
        .is_some_and(|tags| tags.iter().any(|t| t == rule.name()))
}

/// Extracts rule names from every `lint:allow(a, b)` marker in `comment`.
fn parse_allow_tags(comment: &str) -> Vec<String> {
    let mut tags = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        if let Some(end) = rest.find(')') {
            for tag in rest[..end].split(',') {
                let tag = tag.trim();
                if !tag.is_empty() {
                    tags.push(tag.to_string());
                }
            }
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    tags
}

// ---------------------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------------------

/// True when `pat` occurs in `code` delimited by non-identifier characters.
fn has_word(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        let start = from + pos;
        let end = start + pat.len();
        let pre_ok = start == 0 || !is_ident_char(code[..start].chars().next_back().unwrap_or(' '));
        let post_ok =
            end >= code.len() || !is_ident_char(code[end..].chars().next().unwrap_or(' '));
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Name of a `pub fn` declared on this line, if any.
fn pub_fn_name(code: &str) -> Option<String> {
    let pos = code.find("pub fn ")?;
    let rest = &code[pos + "pub fn ".len()..];
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// The unit suffix carried by `ident`, with the suggested newtype.
fn unit_suffix_of(ident: &str) -> Option<(&'static str, &'static str)> {
    UNIT_SUFFIXES
        .iter()
        .find(|(suffix, _)| ident.ends_with(suffix))
        .copied()
}

/// All `ident: f64` occurrences on the line where `ident` is unit-suffixed.
fn f64_params_with_unit_suffix(code: &str) -> Vec<(String, &'static str)> {
    let mut found = Vec::new();
    let chars: Vec<char> = code.chars().collect();
    let mut from = 0;
    while let Some(pos) = code[from..].find("f64") {
        let start = from + pos;
        from = start + 3;
        // Word boundary around `f64` (reject `xf64`, `f64x`).
        let char_idx = code[..start].chars().count();
        if char_idx > 0 && is_ident_char(chars[char_idx - 1]) {
            continue;
        }
        if chars.get(char_idx + 3).copied().is_some_and(is_ident_char) {
            continue;
        }
        // Walk backwards over `: ` to the identifier.
        let mut j = char_idx;
        while j > 0 && chars[j - 1] == ' ' {
            j -= 1;
        }
        if j == 0 || chars[j - 1] != ':' {
            continue;
        }
        j -= 1;
        if j > 0 && chars[j - 1] == ':' {
            continue; // `::f64` path segment, not a type ascription
        }
        while j > 0 && chars[j - 1] == ' ' {
            j -= 1;
        }
        let ident_end = j;
        while j > 0 && is_ident_char(chars[j - 1]) {
            j -= 1;
        }
        let ident: String = chars[j..ident_end].iter().collect();
        if let Some((_, suggestion)) = unit_suffix_of(&ident) {
            found.push((ident, suggestion));
        }
    }
    found
}

/// Equality/inequality operators on this line with a float-literal operand.
fn float_eq_ops(code: &str) -> Vec<&'static str> {
    let bytes = code.as_bytes();
    let mut ops = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let op = match (bytes[i], bytes[i + 1]) {
            (b'=', b'=') => Some("=="),
            (b'!', b'=') => Some("!="),
            _ => None,
        };
        if let Some(op) = op {
            // Reject `<=`, `>=`, `===`-like neighborhoods.
            let prev = if i > 0 { bytes[i - 1] } else { b' ' };
            let next = bytes.get(i + 2).copied().unwrap_or(b' ');
            if !matches!(prev, b'<' | b'>' | b'!' | b'=') && next != b'=' {
                let left = trailing_token(&code[..i]);
                let right = leading_token(&code[i + 2..]);
                if is_float_literal(&left) || is_float_literal(&right) {
                    ops.push(op);
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    ops
}

fn trailing_token(s: &str) -> String {
    s.trim_end()
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c) || c == '.')
        .collect::<String>()
        .chars()
        .rev()
        .collect()
}

fn leading_token(s: &str) -> String {
    let s = s.trim_start();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if is_ident_char(c) || c == '.' || (i == 0 && c == '-') {
            out.push(c);
        } else {
            break;
        }
    }
    out
}

/// True for tokens like `0.0`, `-273.15`, `6.25e3`, `1.0_f64`.
fn is_float_literal(token: &str) -> bool {
    let cleaned = token
        .trim_start_matches('-')
        .trim_end_matches("_f64")
        .trim_end_matches("_f32")
        .replace('_', "");
    cleaned.contains('.')
        && cleaned.chars().next().is_some_and(|c| c.is_ascii_digit())
        && cleaned.parse::<f64>().is_ok()
}

/// The first `expr[<int literal>]` index on the line, if any.
fn literal_index(code: &str) -> Option<String> {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let prev = chars[i - 1];
        if !(is_ident_char(prev) || prev == ')' || prev == ']') {
            continue;
        }
        let mut j = i + 1;
        let mut digits = String::new();
        while j < chars.len() && chars[j].is_ascii_digit() {
            digits.push(chars[j]);
            j += 1;
        }
        if !digits.is_empty() && chars.get(j) == Some(&']') {
            return Some(digits);
        }
    }
    None
}

/// Carbon-unit constructor calls whose first argument is a bare numeric
/// literal (zero excluded — `ZERO` initializers are not physical constants).
fn ctor_literal_args(code: &str) -> Vec<(&'static str, String)> {
    let mut found = Vec::new();
    for &ctor in CARBON_CTORS {
        let mut from = 0;
        while let Some(pos) = code[from..].find(ctor) {
            let start = from + pos;
            let end = start + ctor.len();
            from = end;
            let pre_ok =
                start == 0 || !is_ident_char(code[..start].chars().next_back().unwrap_or(' '));
            if !pre_ok || !code[end..].starts_with('(') {
                continue;
            }
            let arg = &code[end + 1..];
            let token = leading_token(arg);
            if token.is_empty() {
                continue;
            }
            let numeric = token.trim_start_matches('-');
            if numeric.chars().next().is_some_and(|c| c.is_ascii_digit())
                && numeric.replace('_', "").parse::<f64>().is_ok()
            {
                let value: f64 = numeric.replace('_', "").parse().unwrap_or(0.0);
                if value != 0.0 {
                    found.push((ctor, token));
                }
            }
        }
    }
    found
}
