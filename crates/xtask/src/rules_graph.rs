//! The four cross-item rules — phase 2 of the static-analysis engine.
//!
//! These rules run over the [`crate::items::FileGraph`]s of every scanned
//! file at once, so they can relate a `struct`'s field list to a `CacheKey`
//! impl in another file, follow calls across an item graph, and seed taint
//! from a file's imports:
//!
//! - **`cache-key-completeness`** — every named field of a type with a
//!   `CacheKey` impl must be read (`self.<field>`) inside `encode_key`,
//!   and a hand-written `CacheValue`/codec pair must read back exactly the
//!   fields it writes. This machine-checks the completeness contract that
//!   `CacheKey` documents but PR 5 could only enforce by review: a field
//!   added without a matching `write_*` is a stale-cache bug, not a style
//!   nit. Intentional exclusions (obs/cache handles) are annotated at the
//!   *field site*, so the rule keeps watching every other field.
//! - **`determinism-taint`** — seeds a taint set from `std::collections`
//!   imports of `HashMap`/`HashSet`, propagates it to bindings, fields and
//!   params of those types, and flags order-dependent operations on
//!   tainted values (iteration, `retain`, `drain`, and float reductions
//!   over unordered iterators) inside simulation-crate fn bodies. Owning
//!   an unordered map for point lookups is fine; *iterating* one is where
//!   seed-reproducibility dies.
//! - **`obs-coverage`** — a `pub fn` in a designated hot-path file that
//!   (transitively, through same-file calls) reaches a loop must also
//!   (transitively) record a span / carry an obs handle, so new hot paths
//!   cannot silently escape the observability layer.
//! - **`const-provenance`** — numeric literals with ≥3 significant digits
//!   inside simulation-crate fn bodies must live in the per-crate
//!   `constants` modules (with provenance comments) instead of inline.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{FileGraph, FnItem, StructItem};
use crate::lexer::{Token, TokenKind};
use crate::rules::{allowed, CONSTANT_MODULES, SIM_CRATES};
use crate::{Diagnostic, FileClass, Rule};

/// Files whose public functions the `obs-coverage` rule audits: the
/// simulation, figure-generation, and telemetry hot paths instrumented in
/// PR 3. A pub fn here that reaches a loop without reaching a span is a
/// blind spot in every `--obs` profile.
const OBS_HOT_FILES: &[&str] = &[
    "crates/fleet/src/sim.rs",
    "crates/bench/src/figs/mod.rs",
    "crates/telemetry/src/meter.rs",
    "crates/telemetry/src/tracker.rs",
    "crates/telemetry/src/faults.rs",
    "crates/stream/src/pipeline.rs",
];

/// Identifiers that count as observability evidence in a fn body: span
/// creation, obs-handle injection/usage, or the figure tracing wrapper.
const OBS_EVIDENCE: &[&str] = &["span", "with_obs", "obs", "traced"];

/// Unordered-collection type names the taint rule seeds from
/// `std::collections` imports.
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods whose call on an unordered collection is order-dependent.
const UNORDERED_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "retain",
    "drain",
];

/// Iterator adapters that fold floats — an unordered reduction is wrong
/// even when every element is visited, because float addition does not
/// associate.
const REDUCTIONS: &[&str] = &["sum", "fold", "product"];

/// One analyzed file, bundling everything phase 2 needs.
pub(crate) struct FileAnalysis {
    /// Path classification (selects which rules are in force).
    pub class: FileClass,
    /// The full token stream (comments included).
    pub tokens: Vec<Token>,
    /// Parsed item graph.
    pub graph: FileGraph,
    /// Per-line effective `lint:allow` tags (same vector the line rules
    /// use, so suppression semantics are identical in both phases).
    pub allows: Vec<Vec<String>>,
}

/// Runs the cross-item rules over every analyzed file, resolving structs
/// across file boundaries. Diagnostics are attributed to the file that owns
/// the offending item (a missing cache-key field points at the *field*, so
/// its `lint:allow` lives next to the field it excuses).
pub(crate) fn scan_workspace(files: &[FileAnalysis]) -> Vec<Diagnostic> {
    let index = StructIndex::build(files);
    let mut diags = Vec::new();
    for file in files {
        cache_key_completeness(file, files, &index, &mut diags);
        determinism_taint(file, &mut diags);
        obs_coverage(file, &mut diags);
        const_provenance(file, &mut diags);
    }
    diags
}

/// Workspace-wide struct lookup: type name → (file index, struct). Types
/// defined in several files (duplicate names) resolve same-file only.
struct StructIndex {
    by_name: BTreeMap<String, Vec<usize>>,
}

impl StructIndex {
    fn build(files: &[FileAnalysis]) -> StructIndex {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, file) in files.iter().enumerate() {
            for s in &file.graph.structs {
                by_name.entry(s.name.clone()).or_default().push(idx);
            }
        }
        StructIndex { by_name }
    }

    /// Resolves `name` from `from` (a file index): the same file wins, then
    /// a unique cross-file definition; ambiguous names resolve to nothing.
    fn resolve<'a>(
        &self,
        files: &'a [FileAnalysis],
        from: usize,
        name: &str,
    ) -> Option<(usize, &'a StructItem)> {
        let candidates = self.by_name.get(name)?;
        let file_idx = if candidates.contains(&from) {
            from
        } else if candidates.len() == 1 {
            candidates[0]
        } else {
            return None;
        };
        files[file_idx]
            .graph
            .struct_named(name)
            .map(|s| (file_idx, s))
    }
}

fn push_unless_allowed(
    diags: &mut Vec<Diagnostic>,
    file: &FileAnalysis,
    line: usize,
    rule: Rule,
    message: String,
) {
    if !allowed(&file.allows, line.saturating_sub(1), rule) {
        diags.push(Diagnostic {
            file: file.class.path.clone(),
            line,
            rule,
            message,
        });
    }
}

// ---------------------------------------------------------------------------
// cache-key-completeness
// ---------------------------------------------------------------------------

/// Field names mentioned as `self.<field>` inside a token range.
fn self_field_mentions(tokens: &[Token], body: std::ops::Range<usize>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let toks = &tokens[body];
    for i in 0..toks.len() {
        if toks[i].is_ident("self")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            out.insert(toks[i + 2].text.clone());
        }
    }
    out
}

/// Bare identifier occurrences inside a token range (comments excluded).
fn ident_mentions(tokens: &[Token], body: std::ops::Range<usize>) -> BTreeSet<String> {
    tokens[body]
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

fn cache_key_completeness(
    file: &FileAnalysis,
    files: &[FileAnalysis],
    index: &StructIndex,
    diags: &mut Vec<Diagnostic>,
) {
    let from = files
        .iter()
        .position(|f| std::ptr::eq(f, file))
        .unwrap_or(0);

    // --- CacheKey: every named field must reach the encoder ---------------
    for imp in &file.graph.impls {
        if imp.trait_name.as_deref() != Some("CacheKey") {
            continue;
        }
        let Some(encode) = imp
            .methods
            .iter()
            .find(|m| m.name == "encode_key" || m.name == "write_key")
        else {
            continue;
        };
        let Some((owner_idx, strukt)) = index.resolve(files, from, &imp.type_name) else {
            continue;
        };
        if !strukt.named_fields {
            continue;
        }
        let owner = &files[owner_idx];
        let mentioned = self_field_mentions(&file.tokens, encode.body.clone());
        for field in &strukt.fields {
            if !mentioned.contains(&field.name) {
                push_unless_allowed(
                    diags,
                    owner,
                    field.line,
                    Rule::CacheKeyCompleteness,
                    format!(
                        "field `{}` of `{}` never reaches `{}::encode_key` ({}:{}): the cache \
                         cannot see changes to it and will serve stale results; encode it or \
                         mark the field with lint:allow(cache-key-completeness) + why it cannot \
                         affect the cached value",
                        field.name, strukt.name, strukt.name, file.class.path, encode.line
                    ),
                );
            }
        }
    }

    // --- CacheValue / codec symmetry --------------------------------------
    // Collect to_cache_bytes / from_cache_bytes per target type across every
    // impl block in the file (the real codec often lives on the inherent
    // impl, with the trait impl delegating), and union the field mentions —
    // a delegating wrapper contributes nothing, the real codec contributes
    // its whole field set.
    let mut writers: BTreeMap<&str, Vec<&FnItem>> = BTreeMap::new();
    let mut readers: BTreeMap<&str, Vec<&FnItem>> = BTreeMap::new();
    for imp in &file.graph.impls {
        for m in &imp.methods {
            if m.name == "to_cache_bytes" {
                writers.entry(&imp.type_name).or_default().push(m);
            } else if m.name == "from_cache_bytes" {
                readers.entry(&imp.type_name).or_default().push(m);
            }
        }
    }
    for (type_name, writer_fns) in &writers {
        let Some(reader_fns) = readers.get(type_name) else {
            continue;
        };
        let Some((_, strukt)) = index.resolve(files, from, type_name) else {
            continue;
        };
        if !strukt.named_fields {
            continue;
        }
        let field_names: BTreeSet<String> = strukt.fields.iter().map(|f| f.name.clone()).collect();
        let written: BTreeSet<String> = writer_fns
            .iter()
            .flat_map(|w| self_field_mentions(&file.tokens, w.body.clone()))
            .filter(|f| field_names.contains(f))
            .collect();
        if written.is_empty() {
            // Delegating codec (serde round-trip or a forwarder): nothing
            // field-wise to check here.
            continue;
        }
        let read: BTreeSet<String> = reader_fns
            .iter()
            .flat_map(|r| ident_mentions(&file.tokens, r.body.clone()))
            .filter(|f| field_names.contains(f))
            .collect();
        // Anchor diagnostics on the impl that actually names fields.
        let writer = writer_fns
            .iter()
            .find(|w| !self_field_mentions(&file.tokens, w.body.clone()).is_disjoint(&field_names))
            .unwrap_or(&writer_fns[0]);
        let reader = reader_fns
            .iter()
            .find(|r| !ident_mentions(&file.tokens, r.body.clone()).is_disjoint(&field_names))
            .unwrap_or(&reader_fns[0]);
        for f in written.difference(&read) {
            push_unless_allowed(
                diags,
                file,
                writer.line,
                Rule::CacheKeyCompleteness,
                format!(
                    "`{type_name}::to_cache_bytes` writes field `{f}` but \
                     `from_cache_bytes` never reads it back — the decoded value would \
                     silently drop it"
                ),
            );
        }
        for f in read.difference(&written) {
            push_unless_allowed(
                diags,
                file,
                reader.line,
                Rule::CacheKeyCompleteness,
                format!(
                    "`{type_name}::from_cache_bytes` reads field `{f}` that \
                     `to_cache_bytes` never writes — the codec cannot round-trip"
                ),
            );
        }
        for field in &strukt.fields {
            if !written.contains(&field.name) && !read.contains(&field.name) {
                push_unless_allowed(
                    diags,
                    file,
                    writer.line,
                    Rule::CacheKeyCompleteness,
                    format!(
                        "field `{}` of `{type_name}` is covered by neither side of the \
                         cache codec; serialize it or justify with \
                         lint:allow(cache-key-completeness)",
                        field.name
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// determinism-taint
// ---------------------------------------------------------------------------

/// True when `text` contains `word` delimited by non-identifier characters.
fn contains_word(text: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0
            || !text[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        let post_ok = end >= text.len()
            || !text[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

fn determinism_taint(file: &FileAnalysis, diags: &mut Vec<Diagnostic>) {
    let class = &file.class;
    let in_sim = class
        .crate_name
        .as_deref()
        .is_some_and(|c| SIM_CRATES.contains(&c));
    if !in_sim || !class.lib_src || class.test_like {
        return;
    }

    // Seed: unordered types imported from std::collections (renames keep
    // the in-scope name), plus inline `std::collections::HashMap` paths.
    let mut tainted_types: BTreeSet<String> = BTreeSet::new();
    for u in &file.graph.uses {
        if !u.path.contains("collections") {
            continue;
        }
        for leaf in &u.leaves {
            if UNORDERED_TYPES.contains(&leaf.as_str()) {
                tainted_types.insert(leaf.clone());
            }
            if leaf == "*" {
                for t in UNORDERED_TYPES {
                    tainted_types.insert((*t).to_string());
                }
            }
        }
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if toks[i].is_ident("collections")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(t) = toks.get(i + 3) {
                if UNORDERED_TYPES.contains(&t.text.as_str()) {
                    tainted_types.insert(t.text.clone());
                }
            }
        }
    }
    if tainted_types.is_empty() {
        return;
    }

    // Tainted struct fields (accessed as `self.<f>`).
    let mut tainted_fields: BTreeSet<String> = BTreeSet::new();
    for s in &file.graph.structs {
        for f in &s.fields {
            if tainted_types.iter().any(|t| contains_word(&f.type_text, t)) {
                tainted_fields.insert(f.name.clone());
            }
        }
    }

    for (func, _impl_target) in file.graph.all_fns() {
        let mut tainted_vars: BTreeSet<String> = BTreeSet::new();

        // Params typed with a tainted type: `name: HashMap<..>`.
        let sig = &toks[func.signature.clone()];
        for i in 0..sig.len() {
            if sig[i].kind == TokenKind::Ident && tainted_types.contains(&sig[i].text) {
                // Walk back to the nearest `:` and take the ident before it.
                let mut j = i;
                while j > 0 && !sig[j - 1].is_punct(':') {
                    if sig[j - 1].is_punct(',') || sig[j - 1].is_punct('(') {
                        break;
                    }
                    j -= 1;
                }
                if j >= 2 && sig[j - 1].is_punct(':') && sig[j - 2].kind == TokenKind::Ident {
                    tainted_vars.insert(sig[j - 2].text.clone());
                }
            }
        }

        // Bindings whose initializer or ascription names a tainted type:
        // scan each `let` statement up to its `;`.
        let body = &toks[func.body.clone()];
        let mut i = 0usize;
        while i < body.len() {
            if body[i].is_ident("let") {
                let mut j = i + 1;
                if body.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name_tok) = body.get(j).filter(|t| t.kind == TokenKind::Ident) {
                    let mut k = j + 1;
                    let mut saw_taint = false;
                    let mut depth = 0i32;
                    while let Some(t) = body.get(k) {
                        match t.kind {
                            TokenKind::Punct(';') if depth <= 0 => break,
                            TokenKind::Punct('{')
                            | TokenKind::Punct('(')
                            | TokenKind::Punct('[') => depth += 1,
                            TokenKind::Punct('}')
                            | TokenKind::Punct(')')
                            | TokenKind::Punct(']') => depth -= 1,
                            TokenKind::Ident if tainted_types.contains(&t.text) => {
                                saw_taint = true;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if saw_taint {
                        tainted_vars.insert(name_tok.text.clone());
                    }
                    i = k;
                    continue;
                }
            }
            i += 1;
        }

        // Violations: order-dependent operations on tainted receivers.
        let mut fired_at: BTreeSet<usize> = BTreeSet::new();
        for i in 0..body.len() {
            // Receiver forms: `v` (tainted var), `self.f` (tainted field),
            // or a tainted type name used directly (`HashMap::from(..)`).
            let (recv_text, recv_end) =
                if body[i].kind == TokenKind::Ident && tainted_vars.contains(&body[i].text) {
                    (body[i].text.clone(), i)
                } else if body[i].is_ident("self")
                    && body.get(i + 1).is_some_and(|t| t.is_punct('.'))
                    && body.get(i + 2).is_some_and(|t| {
                        t.kind == TokenKind::Ident && tainted_fields.contains(&t.text)
                    })
                {
                    (format!("self.{}", body[i + 2].text), i + 2)
                } else {
                    continue;
                };

            // `for .. in [&][mut] recv` — iterating the collection itself.
            // Walk back over reference sigils; the token before must be the
            // loop's `in` (nothing else uses `in` in expression position).
            let mut p = i;
            while p > 0 && (body[p - 1].is_punct('&') || body[p - 1].is_ident("mut")) {
                p -= 1;
            }
            let for_iteration = p > 0 && body[p - 1].is_ident("in");

            // `recv.method(..)` with an order-dependent method.
            let mut method: Option<&str> = None;
            if body.get(recv_end + 1).is_some_and(|t| t.is_punct('.')) {
                if let Some(m) = body.get(recv_end + 2) {
                    if UNORDERED_METHODS.contains(&m.text.as_str())
                        && body
                            .get(recv_end + 3)
                            .is_some_and(|t| t.is_punct('(') || t.is_punct(':') || t.is_punct('<'))
                    {
                        method = Some(
                            UNORDERED_METHODS[UNORDERED_METHODS
                                .iter()
                                .position(|u| *u == m.text.as_str())
                                .unwrap_or(0)],
                        );
                    }
                }
            }
            if method.is_none() && !for_iteration {
                continue;
            }
            if !fired_at.insert(i) {
                continue;
            }

            // Scan the rest of the statement for a float reduction.
            let mut reduction: Option<&str> = None;
            let mut depth = 0i32;
            let mut k = recv_end + 1;
            while let Some(t) = body.get(k) {
                match t.kind {
                    TokenKind::Punct(';') if depth <= 0 => break,
                    TokenKind::Punct('{') if depth <= 0 => break,
                    TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                        depth += 1
                    }
                    TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                        depth -= 1
                    }
                    TokenKind::Ident if REDUCTIONS.contains(&t.text.as_str()) => {
                        reduction = Some(
                            REDUCTIONS[REDUCTIONS
                                .iter()
                                .position(|r| *r == t.text.as_str())
                                .unwrap_or(0)],
                        );
                    }
                    _ => {}
                }
                k += 1;
            }

            let line = body[i].line;
            let message = match (reduction, method) {
                (Some(red), _) => format!(
                    "`.{red}()` folds floats over the arbitrary iteration order of \
                     unordered `{recv_text}`; float addition does not associate, so the \
                     result depends on hasher state — use a BTreeMap/BTreeSet or sort \
                     before reducing"
                ),
                (None, Some(m)) => format!(
                    "`{recv_text}.{m}(..)` visits an unordered collection in arbitrary \
                     order inside a simulation crate; use a BTreeMap/BTreeSet or collect \
                     and sort before iterating"
                ),
                (None, None) => format!(
                    "`for .. in {recv_text}` iterates an unordered collection in \
                     arbitrary order inside a simulation crate; use a BTreeMap/BTreeSet \
                     or sort first"
                ),
            };
            push_unless_allowed(diags, file, line, Rule::DeterminismTaint, message);
        }
    }
}

// ---------------------------------------------------------------------------
// obs-coverage
// ---------------------------------------------------------------------------

fn obs_coverage(file: &FileAnalysis, diags: &mut Vec<Diagnostic>) {
    if !OBS_HOT_FILES.contains(&file.class.path.as_str()) {
        return;
    }
    let toks = &file.tokens;
    let fns: Vec<&FnItem> = file.graph.all_fns().map(|(f, _)| f).collect();

    // Per-fn direct facts.
    let mut has_loop: BTreeMap<&str, bool> = BTreeMap::new();
    let mut has_evidence: BTreeMap<&str, bool> = BTreeMap::new();
    let mut calls: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let names: BTreeSet<&str> = fns.iter().map(|f| f.name.as_str()).collect();
    for f in &fns {
        let body = &toks[f.body.clone()];
        let lp = body
            .iter()
            .any(|t| t.is_ident("for") || t.is_ident("while") || t.is_ident("loop"));
        let ev = body
            .iter()
            .any(|t| t.kind == TokenKind::Ident && OBS_EVIDENCE.contains(&t.text.as_str()));
        *has_loop.entry(f.name.as_str()).or_insert(false) |= lp;
        *has_evidence.entry(f.name.as_str()).or_insert(false) |= ev;
        let entry = calls.entry(f.name.as_str()).or_default();
        for i in 0..body.len() {
            if body[i].kind == TokenKind::Ident
                && body.get(i + 1).is_some_and(|t| t.is_punct('('))
                && names.contains(body[i].text.as_str())
            {
                entry.insert(names.get(body[i].text.as_str()).copied().unwrap_or(""));
            }
        }
    }

    // Transitive closure over same-file calls (the graphs are tiny; a
    // fixed-point loop is simpler than a real SCC pass).
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot_loop = has_loop.clone();
        let snapshot_ev = has_evidence.clone();
        for (caller, callees) in &calls {
            for callee in callees {
                if snapshot_loop.get(callee).copied().unwrap_or(false)
                    && !has_loop.get(caller).copied().unwrap_or(false)
                {
                    has_loop.insert(caller, true);
                    changed = true;
                }
                if snapshot_ev.get(callee).copied().unwrap_or(false)
                    && !has_evidence.get(caller).copied().unwrap_or(false)
                {
                    has_evidence.insert(caller, true);
                    changed = true;
                }
            }
        }
    }

    for f in &fns {
        if !f.is_pub || f.body.is_empty() {
            continue;
        }
        let hot = has_loop.get(f.name.as_str()).copied().unwrap_or(false);
        let covered = has_evidence.get(f.name.as_str()).copied().unwrap_or(false);
        if hot && !covered {
            push_unless_allowed(
                diags,
                file,
                f.line,
                Rule::ObsCoverage,
                format!(
                    "pub fn `{}` reaches a loop in an instrumented hot path but records \
                     no span and carries no obs handle; add a span/with_obs (or a same-file \
                     instrumented callee), or justify with lint:allow(obs-coverage)",
                    f.name
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// const-provenance
// ---------------------------------------------------------------------------

/// Significant decimal digits of a numeric literal's mantissa: digits with
/// leading and trailing zeros stripped (`3600.0` → 2, `273.15` → 5,
/// `0.125` → 3, `1e-9` → 1).
fn significant_digits(text: &str) -> usize {
    let cleaned = text.replace('_', "");
    let lower = cleaned.to_ascii_lowercase();
    if lower.starts_with("0x") || lower.starts_with("0o") || lower.starts_with("0b") {
        return 0; // bit patterns, not physical constants
    }
    // Mantissa: strip exponent and type suffix.
    let mantissa_end = lower
        .char_indices()
        .find(|(i, c)| {
            (*c == 'e'
                && lower[i + 1..]
                    .chars()
                    .next()
                    .is_some_and(|n| n.is_ascii_digit() || n == '+' || n == '-'))
                || (c.is_ascii_alphabetic() && *c != 'e')
        })
        .map(|(i, _)| i)
        .unwrap_or(lower.len());
    let digits: String = lower[..mantissa_end]
        .chars()
        .filter(|c| c.is_ascii_digit())
        .collect();
    digits.trim_start_matches('0').trim_end_matches('0').len()
}

/// True for literal texts the rule treats as float-form (a decimal point
/// or a real exponent).
fn is_float_form(text: &str) -> bool {
    let cleaned = text.replace('_', "");
    let lower = cleaned.to_ascii_lowercase();
    if lower.starts_with("0x") {
        return false;
    }
    lower.contains('.')
        || lower.char_indices().any(|(i, c)| {
            c == 'e'
                && lower[i + 1..]
                    .chars()
                    .next()
                    .is_some_and(|n| n.is_ascii_digit() || n == '+' || n == '-')
        })
}

fn const_provenance(file: &FileAnalysis, diags: &mut Vec<Diagnostic>) {
    let class = &file.class;
    let in_sim = class
        .crate_name
        .as_deref()
        .is_some_and(|c| SIM_CRATES.contains(&c));
    if !in_sim
        || !class.lib_src
        || class.test_like
        || CONSTANT_MODULES.contains(&class.stem.as_str())
    {
        return;
    }
    for (func, _) in file.graph.all_fns() {
        for tok in &file.tokens[func.body.clone()] {
            if tok.kind != TokenKind::Number {
                continue;
            }
            if is_float_form(&tok.text) && significant_digits(&tok.text) >= 3 {
                push_unless_allowed(
                    diags,
                    file,
                    tok.line,
                    Rule::ConstProvenance,
                    format!(
                        "literal `{}` ({} significant digits) in fn `{}` looks like an \
                         unprovenanced physical constant; name it in this crate's \
                         `constants` module with a source comment, or justify with \
                         lint:allow(const-provenance)",
                        tok.text,
                        significant_digits(&tok.text),
                        func.name
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significant_digit_counting() {
        assert_eq!(significant_digits("3600.0"), 2);
        assert_eq!(significant_digits("273.15"), 5);
        assert_eq!(significant_digits("0.125"), 3);
        assert_eq!(significant_digits("1e-9"), 1);
        assert_eq!(significant_digits("6.25e-4"), 3);
        assert_eq!(significant_digits("0.95"), 2);
        assert_eq!(significant_digits("1_000.5f64"), 5);
        assert_eq!(significant_digits("0xcbf2"), 0);
    }

    #[test]
    fn float_form_detection() {
        assert!(is_float_form("0.5"));
        assert!(is_float_form("1e3"));
        assert!(is_float_form("6.25e-4"));
        assert!(!is_float_form("42"));
        assert!(!is_float_form("0x1f"));
        assert!(!is_float_form("7e")); // suffix, not exponent
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("HashMap<String,u64>", "HashMap"));
        assert!(!contains_word("MyHashMapLike", "HashMap"));
        assert!(contains_word("Vec<HashSet<u64>>", "HashSet"));
    }
}
