//! Line-oriented source sanitizer.
//!
//! Splits each source line into *code* text and *comment* text so the lint
//! rules never match patterns inside string literals, char literals, or
//! comments. String and char literal **contents** are blanked (delimiters
//! kept) and comment text is extracted separately — the rules scan the code
//! channel, while `// lint:allow(...)` markers are read from the comment
//! channel.
//!
//! The scanner is a persistent state machine across lines, so multi-line
//! block comments (including Rust's nested `/* /* */ */`), multi-line string
//! literals, and raw strings (`r"…"`, `r#"…"#`, `br"…"`) are all handled.

/// One source line split into its code and comment channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineView {
    /// Code text with string/char contents blanked out (delimiters kept).
    pub code: String,
    /// Concatenated comment text appearing on this line.
    pub comment: String,
}

impl LineView {
    /// True when the line carries no code at all (blank or comment-only).
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// Lexical mode carried across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside `/* … */`; Rust block comments nest, so track the depth.
    BlockComment(u32),
    /// Inside a normal `"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` followed by this many `#`s.
    RawStr(u32),
}

/// Splits `source` into per-line [`LineView`]s.
pub fn split_lines(source: &str) -> Vec<LineView> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw in source.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match mode {
                Mode::Code => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        comment.extend(&chars[i + 2..]);
                        i = chars.len();
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment(1);
                        code.push(' ');
                        i += 2;
                    } else if c == '"' {
                        mode = Mode::Str;
                        code.push('"');
                        i += 1;
                    } else if let Some(hashes) = raw_string_open(&chars, i) {
                        mode = Mode::RawStr(hashes.count);
                        code.push('"');
                        i = hashes.body_start;
                    } else if c == '\'' {
                        i = consume_char_or_lifetime(&chars, i, &mut code);
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                Mode::BlockComment(depth) => {
                    let next = chars.get(i + 1).copied();
                    if chars[i] == '*' && next == Some('/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if chars[i] == '/' && next == Some('*') {
                        mode = Mode::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if chars[i] == '\\' {
                        i += 2;
                    } else if chars[i] == '"' {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if chars[i] == '"' && closed_by_hashes(&chars, i + 1, hashes) {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out.push(LineView { code, comment });
    }
    out
}

struct RawOpen {
    count: u32,
    body_start: usize,
}

/// Detects `r"`, `r#"`, `br"` … at position `i`; returns the hash count and
/// the index just past the opening quote.
fn raw_string_open(chars: &[char], i: usize) -> Option<RawOpen> {
    // Must not be the tail of a longer identifier (`for"` is not valid Rust,
    // but be conservative anyway).
    if i > 0 && is_ident_char(chars[i - 1]) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut count = 0u32;
    while chars.get(j) == Some(&'#') {
        count += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(RawOpen {
            count,
            body_start: j + 1,
        })
    } else {
        None
    }
}

fn closed_by_hashes(chars: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(from + k) == Some(&'#'))
}

/// Handles a `'` in code position: either a char literal (contents blanked)
/// or a lifetime (kept verbatim). Returns the next index to scan.
fn consume_char_or_lifetime(chars: &[char], i: usize, code: &mut String) -> usize {
    let next = chars.get(i + 1).copied();
    if next == Some('\\') {
        // Escaped char literal: skip to the closing quote.
        code.push('\'');
        let mut j = i + 2;
        if j < chars.len() {
            j += 1; // the escaped character itself
        }
        while j < chars.len() && chars[j] != '\'' {
            j += 1;
        }
        if j < chars.len() {
            code.push('\'');
            j += 1;
        }
        j
    } else if chars.get(i + 2) == Some(&'\'') && next.is_some() {
        // Plain char literal like 'x'.
        code.push('\'');
        code.push(' ');
        code.push('\'');
        i + 3
    } else {
        // Lifetime such as 'a — keep the tick, continue scanning normally.
        code.push('\'');
        i + 1
    }
}

/// True for characters that can continue a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        split_lines(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comment_is_extracted() {
        let lines = split_lines("let x = 1; // lint:allow(float-eq) tolerance checked above");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert!(lines[0].comment.contains("lint:allow(float-eq)"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = codes(r#"let s = "x.unwrap() == 0.0";"#);
        assert_eq!(lines[0], "let s = \"\";");
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let lines = codes("a /* one /* two */\nstill */ b");
        assert_eq!(lines[0], "a  ");
        assert_eq!(lines[1], " b");
    }

    #[test]
    fn raw_strings_close_on_matching_hashes() {
        let lines = codes("let s = r#\"has \"quote\" inside\"#; tail()");
        assert_eq!(lines[0], "let s = \"\"; tail()");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = codes("fn f<'a>(c: char) { if c == '\"' {} }");
        assert_eq!(lines[0], "fn f<'a>(c: char) { if c == ' ' {} }");
    }

    #[test]
    fn multiline_string_literal() {
        let lines = codes("let s = \"first\nsecond == 0.0\nthird\"; done");
        assert_eq!(lines[0], "let s = \"");
        assert_eq!(lines[1], "");
        assert_eq!(lines[2], "\"; done");
    }
}
