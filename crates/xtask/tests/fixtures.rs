//! Fixture tests for every lint rule: one violating snippet, one clean
//! snippet, and one snippet silenced with `lint:allow(<rule>)` per rule.

use xtask::{lint_source, Rule};

/// Path that classifies as library source inside a simulation crate, so all
/// seven rules (including determinism and thread-discipline) are in force.
const SIM_LIB: &str = "crates/fleet/src/sim.rs";
/// Library source outside the simulation crates (determinism not enforced).
const CORE_LIB: &str = "crates/core/src/embodied.rs";

fn rules_hit(path: &str, source: &str) -> Vec<Rule> {
    lint_source(path, source)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

fn assert_clean(path: &str, source: &str) {
    let diags = lint_source(path, source);
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

// ---------------------------------------------------------------- unit-leak

#[test]
fn unit_leak_flags_raw_f64_with_unit_suffix() {
    let src = "pub fn total_joules(x: f64) -> f64 { x }\n";
    let hits = rules_hit(CORE_LIB, src);
    assert!(hits.contains(&Rule::UnitLeak), "got {hits:?}");
}

#[test]
fn unit_leak_flags_pub_struct_field() {
    let src = "pub struct Report {\n    pub embodied_kg: f64,\n}\n";
    let hits = rules_hit(CORE_LIB, src);
    assert!(hits.contains(&Rule::UnitLeak), "got {hits:?}");
}

#[test]
fn unit_leak_clean_on_newtype_api() {
    assert_clean(
        CORE_LIB,
        "pub fn total(x: Energy) -> Energy { x }\npub fn speed(p: Power) -> Power { p }\n",
    );
}

#[test]
fn unit_leak_exempts_conversion_boundary() {
    // `from_*` / `as_*` functions are the newtype boundary itself.
    assert_clean(
        CORE_LIB,
        "impl Energy {\n    pub fn as_joules(self) -> f64 { self.0 }\n}\n",
    );
}

#[test]
fn unit_leak_allow_silences() {
    let src = "// lint:allow(unit-leak) FFI boundary keeps raw joules\n\
               pub fn total_joules(x: f64) -> f64 { x }\n";
    assert_clean(CORE_LIB, src);
}

// ----------------------------------------------------------------- float-eq

#[test]
fn float_eq_flags_exact_comparison() {
    let src = "fn f(x: f64) -> bool { x == 0.5 }\n";
    let hits = rules_hit(CORE_LIB, src);
    assert!(hits.contains(&Rule::FloatEq), "got {hits:?}");
}

#[test]
fn float_eq_clean_on_integer_and_ordering() {
    assert_clean(
        CORE_LIB,
        "fn f(x: u64, y: f64) -> bool { x == 3 && y <= 0.5 && y >= 0.1 }\n",
    );
}

#[test]
fn float_eq_allow_silences() {
    let src =
        "fn f(x: f64) -> bool {\n    // lint:allow(float-eq) sentinel compare\n    x == 0.0\n}\n";
    assert_clean(CORE_LIB, src);
}

// --------------------------------------------------------- panic-discipline

#[test]
fn panic_discipline_flags_unwrap_expect_panic_and_index() {
    let src = "fn f(v: &[f64]) -> f64 {\n\
               \x20   let a = v.first().unwrap();\n\
               \x20   let b = v.last().expect(\"non-empty\");\n\
               \x20   if v.is_empty() { panic!(\"empty\"); }\n\
               \x20   a + b + v[0]\n\
               }\n";
    let hits = rules_hit(CORE_LIB, src);
    let n = hits.iter().filter(|r| **r == Rule::PanicDiscipline).count();
    assert_eq!(n, 4, "got {hits:?}");
}

#[test]
fn panic_discipline_clean_in_tests_and_benches() {
    let src = "fn f(v: &[f64]) -> f64 { v.first().unwrap() + v[0] }\n";
    assert_clean("crates/core/tests/embodied.rs", src);
    assert_clean("crates/bench/src/figs/fig1.rs", src);
}

#[test]
fn panic_discipline_clean_in_cfg_test_module() {
    let src = "fn safe() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { Some(1).unwrap(); }\n\
               }\n";
    assert_clean(CORE_LIB, src);
}

#[test]
fn panic_discipline_allow_silences_next_code_line() {
    let src = "fn f(v: &[f64]) -> f64 {\n\
               \x20   // lint:allow(panic-discipline) guarded by the caller\n\
               \x20   v.first().expect(\"non-empty\") + 1.0\n\
               }\n";
    assert_clean(CORE_LIB, src);
}

// -------------------------------------------------------------- determinism

#[test]
fn determinism_flags_wall_clock_and_thread_rng() {
    let src = "fn f() {\n\
               \x20   let _t = std::time::Instant::now();\n\
               \x20   let _r = rand::thread_rng();\n\
               }\n";
    let hits = rules_hit(SIM_LIB, src);
    let n = hits.iter().filter(|r| **r == Rule::Determinism).count();
    assert_eq!(n, 2, "got {hits:?}");
}

#[test]
fn determinism_hashmap_ownership_is_no_longer_flagged() {
    // Rule 4 used to ban `HashMap` by name; the graph rule
    // `determinism-taint` subsumed it and only iteration/retain/reductions
    // fire now, so owning a map for point lookups is clean.
    let src = "use std::collections::HashMap;\n\
               pub fn f(m: &HashMap<u64, f64>) -> Option<f64> { m.get(&1).copied() }\n";
    assert_clean(SIM_LIB, src);
}

#[test]
fn determinism_not_enforced_outside_sim_crates() {
    assert_clean(CORE_LIB, "use std::collections::HashMap;\n");
}

#[test]
fn determinism_enforced_in_obs_crate() {
    let src = "fn f() { let _r = rand::thread_rng(); }\n";
    let hits = rules_hit("crates/obs/src/recorder.rs", src);
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
}

#[test]
fn determinism_permits_wall_clock_only_in_obs_clock_module() {
    // The sanctioned site: `WallClock::now` in sustain-obs's clock module.
    assert_clean(
        "crates/obs/src/clock.rs",
        "fn now_wall() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    // The carve-out is for the wall clock only; other nondeterminism in the
    // clock module is still flagged.
    let hits = rules_hit(
        "crates/obs/src/clock.rs",
        "fn f() { let _r = rand::thread_rng(); }\n",
    );
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
    // And `Instant::now` anywhere else in sustain-obs is still flagged.
    let hits = rules_hit(
        "crates/obs/src/recorder.rs",
        "fn f() { let _t = std::time::Instant::now(); }\n",
    );
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
    // Other simulation crates never get the carve-out.
    let hits = rules_hit(
        "crates/fleet/src/clock.rs",
        "fn f() { let _t = std::time::Instant::now(); }\n",
    );
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
}

#[test]
fn determinism_allow_silences() {
    let src = "fn f() {\n\
               \x20   // lint:allow(determinism) profiling hook, not part of results\n\
               \x20   let _t = std::time::Instant::now();\n\
               }\n";
    assert_clean(SIM_LIB, src);
}

// -------------------------------------------------------- thread-discipline

#[test]
fn thread_discipline_flags_spawn_and_scope_in_library_code() {
    let src = "fn f() {\n\
               \x20   std::thread::spawn(|| {});\n\
               \x20   std::thread::scope(|_s| {});\n\
               }\n";
    let hits = rules_hit(SIM_LIB, src);
    let n = hits
        .iter()
        .filter(|r| **r == Rule::ThreadDiscipline)
        .count();
    assert_eq!(n, 2, "got {hits:?}");
    // Enforced outside the simulation crates too.
    let hits = rules_hit(CORE_LIB, "fn f() { std::thread::spawn(|| {}); }\n");
    assert!(hits.contains(&Rule::ThreadDiscipline), "got {hits:?}");
}

#[test]
fn thread_discipline_permits_par_and_obs_crates() {
    let src = "fn f() { std::thread::scope(|_s| {}); }\n";
    assert_clean("crates/par/src/pool.rs", src);
    assert_clean("crates/obs/src/recorder.rs", src);
}

#[test]
fn thread_discipline_clean_in_tests_and_benches() {
    let src = "fn f() { std::thread::spawn(|| {}); }\n";
    assert_clean("crates/fleet/tests/sim.rs", src);
    assert_clean("crates/bench/src/figs/fig1.rs", src);
}

#[test]
fn thread_discipline_allow_silences() {
    let src = "fn f() {\n\
               \x20   // lint:allow(thread-discipline) one-shot watchdog, not a fan-out\n\
               \x20   std::thread::spawn(|| {});\n\
               }\n";
    assert_clean(SIM_LIB, src);
}

// ----------------------------------------------------------- magic-constant

#[test]
fn magic_constant_flags_bare_literal_in_unit_ctor() {
    let src = "fn f() -> Energy { Energy::from_kilowatt_hours(201.0) }\n";
    let hits = rules_hit(CORE_LIB, src);
    assert!(hits.contains(&Rule::MagicConstant), "got {hits:?}");
}

#[test]
fn magic_constant_clean_on_named_constant_and_zero() {
    assert_clean(
        CORE_LIB,
        "fn f() -> Energy { Energy::from_kilowatt_hours(crate::constants::RUN_KWH) }\n\
         fn g() -> Energy { Energy::from_joules(0.0) }\n",
    );
}

#[test]
fn magic_constant_exempt_in_constants_module() {
    let src = "pub fn preset() -> Power { Power::from_watts(7.5) }\n";
    assert_clean("crates/edge/src/constants.rs", src);
}

#[test]
fn magic_constant_allow_silences() {
    let src = "fn f() -> Energy {\n\
               \x20   // lint:allow(magic-constant) 1 kWh probe, not a constant\n\
               \x20   Energy::from_kilowatt_hours(1.0)\n\
               }\n";
    assert_clean(CORE_LIB, src);
}

// -------------------------------------------------------------- lint-header

#[test]
fn lint_header_flags_crate_root_without_forbid() {
    let src = "//! A crate.\n#![deny(missing_docs)]\npub fn f() {}\n";
    let hits = rules_hit("crates/core/src/lib.rs", src);
    assert!(hits.contains(&Rule::LintHeader), "got {hits:?}");
}

#[test]
fn lint_header_clean_with_forbid() {
    assert_clean(
        "crates/core/src/lib.rs",
        "//! A crate.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n",
    );
}

#[test]
fn lint_header_only_applies_to_crate_roots() {
    assert_clean(CORE_LIB, "pub fn f() {}\n");
}

// ------------------------------------------------------------ allow plumbing

#[test]
fn allow_only_covers_adjacent_code_line() {
    // The allow covers the first expect but NOT the one two code lines down.
    let src = "fn f(v: &[f64]) -> f64 {\n\
               \x20   // lint:allow(panic-discipline) guarded\n\
               \x20   let a = v.first().expect(\"a\");\n\
               \x20   let b = v.last().expect(\"b\");\n\
               \x20   a + b\n\
               }\n";
    let diags = lint_source(CORE_LIB, src);
    assert_eq!(diags.len(), 1, "got {diags:?}");
    assert_eq!(diags[0].line, 4);
}

#[test]
fn allow_of_other_rule_does_not_silence() {
    let src = "// lint:allow(float-eq) wrong rule\n\
               pub fn total_joules(x: f64) -> f64 { x }\n";
    let hits = rules_hit(CORE_LIB, src);
    assert!(hits.contains(&Rule::UnitLeak), "got {hits:?}");
}

#[test]
fn diagnostics_carry_file_line_and_render() {
    let diags = lint_source(CORE_LIB, "fn f(x: f64) -> bool { x == 0.5 }\n");
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/embodied.rs:1: [float-eq]"),
        "got {rendered}"
    );
}

// ------------------------------------------------------------ fs-discipline

#[test]
fn fs_discipline_flags_writes_in_library_code() {
    let src = "pub fn save(report: &str) {\n    let _ = std::fs::write(\"out.json\", report);\n}\n";
    let hits = rules_hit(SIM_LIB, src);
    assert!(hits.contains(&Rule::FsDiscipline), "got {hits:?}");
}

#[test]
fn fs_discipline_flags_writes_in_unsanctioned_binaries() {
    // Unlike the library-only rules, write discipline reaches `bin` sources.
    let src = "fn main() {\n    let _ = std::fs::File::create(\"dump.bin\");\n    let _ = std::fs::create_dir_all(\"out\");\n}\n";
    let hits = rules_hit("crates/fleet/src/bin/dump.rs", src);
    assert_eq!(
        hits.iter().filter(|r| **r == Rule::FsDiscipline).count(),
        2,
        "got {hits:?}"
    );
}

#[test]
fn fs_discipline_clean_inside_cache_crate() {
    // The cache crate owns persistence: its stores write freely.
    assert_clean(
        "crates/cache/src/store.rs",
        "pub fn save(dir: &Path) {\n    let _ = std::fs::create_dir_all(dir);\n    let _ = std::fs::rename(\"a\", \"b\");\n}\n",
    );
}

#[test]
fn fs_discipline_clean_on_sanctioned_exporter_sites() {
    let src = "fn write_exports() {\n    let _ = std::fs::write(\"events.jsonl\", \"{}\");\n}\n";
    assert_clean("crates/bench/src/bin/all_figures.rs", src);
    assert_clean("crates/bench/src/bin/bench_suite.rs", src);
}

#[test]
fn fs_discipline_clean_in_test_code() {
    // Integration tests and benches write temp fixtures freely.
    let src = "fn setup() {\n    let _ = std::fs::remove_dir_all(\"tmp\");\n    let _ = std::fs::File::create(\"tmp/x\");\n}\n";
    assert_clean("crates/fleet/tests/replica_cache.rs", src);
    assert_clean("tests/cache_correctness.rs", src);
    assert_clean("crates/bench/benches/figures.rs", src);
}

#[test]
fn fs_discipline_allow_silences() {
    let src = "// lint:allow(fs-discipline) one-shot debug dump, never in CI\n\
               pub fn dump(s: &str) { let _ = std::fs::write(\"dbg.txt\", s); }\n";
    assert_clean(SIM_LIB, src);
}

#[test]
fn fs_discipline_reads_stay_clean() {
    // Only write primitives are disciplined; reads are unrestricted.
    assert_clean(
        SIM_LIB,
        "pub fn load(p: &Path) -> Option<String> {\n    std::fs::read_to_string(p).ok()\n}\n",
    );
}

// --------------------------------------------------- cache-key-completeness

/// A complete CacheKey impl: every struct field reaches the encoder.
const COMPLETE_KEY: &str = "pub struct ScenarioKey {\n\
                            \x20   seed: u64,\n\
                            \x20   arrivals: f64,\n\
                            \x20   horizon: f64,\n\
                            }\n\
                            impl CacheKey for ScenarioKey {\n\
                            \x20   fn namespace(&self) -> &'static str { \"scenario\" }\n\
                            \x20   fn encode_key(&self, encoder: &mut KeyEncoder) {\n\
                            \x20       encoder.write_u64(self.seed);\n\
                            \x20       encoder.write_f64(self.arrivals);\n\
                            \x20       encoder.write_f64(self.horizon);\n\
                            \x20   }\n\
                            }\n";

#[test]
fn cache_key_flags_field_missing_from_encoder() {
    // The planted fixture: `horizon` exists on the struct but never reaches
    // encode_key.
    let src = include_str!("fixtures/cache_key_drift.rs");
    let diags = lint_source(SIM_LIB, src);
    let hits: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::CacheKeyCompleteness)
        .collect();
    assert_eq!(hits.len(), 1, "got {diags:?}");
    assert!(
        hits[0].message.contains("horizon"),
        "got {}",
        hits[0].message
    );
    // The diagnostic anchors at the *field* line, so an allow must sit next
    // to the field it excuses, not on the whole impl.
    assert!(src
        .lines()
        .nth(hits[0].line - 1)
        .unwrap()
        .contains("horizon"));
}

#[test]
fn cache_key_deleting_one_write_line_fails_the_lint() {
    // The acceptance check from the issue: a complete impl is clean; the
    // same impl minus one `encoder.write_*` line fires.
    assert_clean(SIM_LIB, COMPLETE_KEY);
    let dropped: String = COMPLETE_KEY
        .lines()
        .filter(|l| !l.contains("write_f64(self.horizon)"))
        .collect::<Vec<_>>()
        .join("\n");
    let hits = rules_hit(SIM_LIB, &dropped);
    assert!(hits.contains(&Rule::CacheKeyCompleteness), "got {hits:?}");
}

#[test]
fn cache_key_flags_codec_asymmetry() {
    // to_cache_bytes writes `b` but from_cache_bytes only restores `a`.
    let src = "pub struct Blob {\n\
               \x20   a: u64,\n\
               \x20   b: u64,\n\
               }\n\
               impl Blob {\n\
               \x20   pub fn to_cache_bytes(&self) -> Vec<u8> {\n\
               \x20       let mut out = self.a.to_le_bytes().to_vec();\n\
               \x20       out.extend(self.b.to_le_bytes());\n\
               \x20       out\n\
               \x20   }\n\
               \x20   pub fn from_cache_bytes(bytes: &[u8]) -> Option<Blob> {\n\
               \x20       let a = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);\n\
               \x20       Some(Blob { a, b: 0 })\n\
               \x20   }\n\
               }\n";
    let diags = lint_source(SIM_LIB, src);
    // `b` appears in the constructor literal, so only a fully absent field
    // can fire the read-back check — rewrite without the `b` mention.
    let src = src.replace(", b: 0 ", " ");
    let diags2 = lint_source(SIM_LIB, &src);
    let n = diags2
        .iter()
        .filter(|d| d.rule == Rule::CacheKeyCompleteness)
        .count();
    assert!(n >= 1, "got {diags2:?} (with-mention case gave {diags:?})");
}

#[test]
fn cache_key_resolves_struct_across_files() {
    // Struct in one file, impl in another: lint_sources links them.
    let strukt = "pub struct ReplicaKey {\n\
                  \x20   sim: u64,\n\
                  \x20   chaos: u64,\n\
                  \x20   seed: u64,\n\
                  }\n";
    let imp = "impl CacheKey for ReplicaKey {\n\
               \x20   fn namespace(&self) -> &'static str { \"replica\" }\n\
               \x20   fn encode_key(&self, encoder: &mut KeyEncoder) {\n\
               \x20       encoder.write_u64(self.sim);\n\
               \x20       encoder.write_u64(self.seed);\n\
               \x20   }\n\
               }\n";
    let diags = xtask::lint_sources(&[
        ("crates/fleet/src/keys.rs".to_string(), strukt.to_string()),
        ("crates/fleet/src/cachimpl.rs".to_string(), imp.to_string()),
    ]);
    assert_eq!(diags.len(), 1, "got {diags:?}");
    assert_eq!(diags[0].rule, Rule::CacheKeyCompleteness);
    // Anchored at the field's own file and line.
    assert_eq!(diags[0].file, "crates/fleet/src/keys.rs");
    assert!(
        diags[0].message.contains("chaos"),
        "got {}",
        diags[0].message
    );
}

#[test]
fn cache_key_field_site_allow_silences_only_that_field() {
    let src = "pub struct K {\n\
               \x20   seed: u64,\n\
               \x20   // lint:allow(cache-key-completeness) debug tag, not an input\n\
               \x20   tag: u64,\n\
               \x20   horizon: f64,\n\
               }\n\
               impl CacheKey for K {\n\
               \x20   fn encode_key(&self, encoder: &mut KeyEncoder) {\n\
               \x20       encoder.write_u64(self.seed);\n\
               \x20   }\n\
               }\n";
    let diags = lint_source(SIM_LIB, src);
    assert_eq!(diags.len(), 1, "got {diags:?}");
    assert!(
        diags[0].message.contains("horizon"),
        "got {}",
        diags[0].message
    );
}

#[test]
fn cache_key_clean_on_delegating_codec() {
    // A serde-style codec that never names fields is out of scope.
    let src = "pub struct Report {\n\
               \x20   energy: f64,\n\
               }\n\
               impl CacheValue for Report {\n\
               \x20   fn to_cache_bytes(&self) -> Vec<u8> { serialize(self) }\n\
               \x20   fn from_cache_bytes(bytes: &[u8]) -> Option<Report> { deserialize(bytes) }\n\
               }\n";
    assert_clean(SIM_LIB, src);
}

// ------------------------------------------------------- determinism-taint

#[test]
fn determinism_taint_flags_planted_fixture() {
    let src = include_str!("fixtures/determinism_taint.rs");
    let diags = lint_source(SIM_LIB, src);
    let msgs: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::DeterminismTaint)
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(msgs.len(), 2, "got {diags:?}");
    assert!(msgs[0].contains("sum"), "got {}", msgs[0]);
    assert!(msgs[1].contains("retain"), "got {}", msgs[1]);
}

#[test]
fn determinism_taint_flags_for_loop_over_tainted_binding() {
    let src = "use std::collections::HashMap;\n\
               pub fn f() -> f64 {\n\
               \x20   let mut m = HashMap::new();\n\
               \x20   m.insert(1u64, 2.0f64);\n\
               \x20   let mut t = 0.0;\n\
               \x20   for (_k, v) in &m { t += v; }\n\
               \x20   t\n\
               }\n";
    let hits = rules_hit(SIM_LIB, src);
    assert!(hits.contains(&Rule::DeterminismTaint), "got {hits:?}");
}

#[test]
fn determinism_taint_flags_tainted_struct_field() {
    let src = "use std::collections::HashSet;\n\
               pub struct Tracker {\n\
               \x20   live: HashSet<u64>,\n\
               }\n\
               impl Tracker {\n\
               \x20   pub fn drain_all(&mut self) -> Vec<u64> {\n\
               \x20       self.live.drain().collect()\n\
               \x20   }\n\
               }\n";
    let hits = rules_hit(SIM_LIB, src);
    assert!(hits.contains(&Rule::DeterminismTaint), "got {hits:?}");
}

#[test]
fn determinism_taint_clean_without_collections_import() {
    // No std::collections import seeds the taint set: `retain` on a Vec or
    // a custom type named like a map is fine.
    let src = "pub fn f(mut v: Vec<u64>) -> usize {\n\
               \x20   v.retain(|x| *x > 0);\n\
               \x20   for x in &v { let _ = x; }\n\
               \x20   v.len()\n\
               }\n";
    // A sim-crate file that is not on the obs-coverage hot-path list, so
    // only the taint rule is in question.
    assert_clean("crates/fleet/src/cluster.rs", src);
}

#[test]
fn determinism_taint_clean_on_btreemap_iteration() {
    let src = "use std::collections::BTreeMap;\n\
               pub fn f(m: &BTreeMap<u64, f64>) -> f64 {\n\
               \x20   m.values().sum::<f64>()\n\
               }\n";
    assert_clean(SIM_LIB, src);
}

#[test]
fn determinism_taint_not_enforced_outside_sim_crates() {
    let src = include_str!("fixtures/determinism_taint.rs");
    let diags = lint_source(CORE_LIB, src);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::DeterminismTaint),
        "got {diags:?}"
    );
}

#[test]
fn determinism_taint_allow_silences() {
    let src = "use std::collections::HashMap;\n\
               pub fn f(m: &HashMap<u64, u64>) -> u64 {\n\
               \x20   // lint:allow(determinism-taint) max is order-independent\n\
               \x20   m.values().copied().max().unwrap_or(0)\n\
               }\n";
    let diags = lint_source(SIM_LIB, src);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::DeterminismTaint),
        "got {diags:?}"
    );
}

// ----------------------------------------------------------- obs-coverage

#[test]
fn obs_coverage_flags_planted_fixture() {
    let src = include_str!("fixtures/obs_gap.rs");
    let diags = lint_source(SIM_LIB, src);
    let hits: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::ObsCoverage)
        .collect();
    assert_eq!(hits.len(), 1, "got {diags:?}");
    assert!(
        hits[0].message.contains("replay"),
        "got {}",
        hits[0].message
    );
}

#[test]
fn obs_coverage_flags_transitive_loop_through_private_callee() {
    // `run` has no loop of its own, but reaches one through `inner`.
    let src = "pub fn run(steps: &[f64]) -> f64 { inner(steps) }\n\
               fn inner(steps: &[f64]) -> f64 {\n\
               \x20   let mut t = 0.0;\n\
               \x20   for s in steps { t += s; }\n\
               \x20   t\n\
               }\n";
    let hits = rules_hit(SIM_LIB, src);
    assert!(hits.contains(&Rule::ObsCoverage), "got {hits:?}");
}

#[test]
fn obs_coverage_clean_with_span_or_instrumented_callee() {
    // Direct span evidence.
    let direct = "pub fn run(o: &Obs, steps: &[f64]) -> f64 {\n\
                  \x20   let _span = o.span(\"run\");\n\
                  \x20   let mut t = 0.0;\n\
                  \x20   for s in steps { t += s; }\n\
                  \x20   t\n\
                  }\n";
    assert_clean(SIM_LIB, direct);
    // Transitive evidence through a same-file callee.
    let transitive = "pub fn run(steps: &[f64]) -> f64 { run_inner(steps) }\n\
                      fn run_inner(steps: &[f64]) -> f64 {\n\
                      \x20   let _span = obs().span(\"run\");\n\
                      \x20   let mut t = 0.0;\n\
                      \x20   for s in steps { t += s; }\n\
                      \x20   t\n\
                      }\n";
    assert_clean(SIM_LIB, transitive);
}

#[test]
fn obs_coverage_only_audits_hot_path_files() {
    // Same loop-bearing pub fn in a non-hot file: out of scope.
    let src = include_str!("fixtures/obs_gap.rs");
    let diags = lint_source("crates/fleet/src/cluster.rs", src);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::ObsCoverage),
        "got {diags:?}"
    );
}

#[test]
fn obs_coverage_allow_silences() {
    let src = "// lint:allow(obs-coverage) pure fold, caller holds the span\n\
               pub fn replay(steps: &[f64]) -> f64 {\n\
               \x20   let mut t = 0.0;\n\
               \x20   for s in steps { t += s; }\n\
               \x20   t\n\
               }\n";
    let diags = lint_source(SIM_LIB, src);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::ObsCoverage),
        "got {diags:?}"
    );
}

// ------------------------------------------------------- const-provenance

#[test]
fn const_provenance_flags_planted_fixture() {
    let src = include_str!("fixtures/const_magic.rs");
    let diags = lint_source(SIM_LIB, src);
    let n = diags
        .iter()
        .filter(|d| d.rule == Rule::ConstProvenance)
        .count();
    assert_eq!(n, 2, "got {diags:?}");
}

#[test]
fn const_provenance_flags_exponent_literals() {
    let src = "pub fn cost() -> f64 { 6.25e-4 }\n";
    let hits = rules_hit(SIM_LIB, src);
    assert!(hits.contains(&Rule::ConstProvenance), "got {hits:?}");
}

#[test]
fn const_provenance_clean_on_round_numbers_and_integers() {
    // ≤2 significant digits, integers, and bit patterns are not "physical
    // constants"; neither are literals outside fn bodies (consts).
    let src = "pub const CALIBRATED: f64 = 273.15;\n\
               pub fn f(x: f64) -> f64 {\n\
               \x20   let scaled = x * 0.5 + 3600.0;\n\
               \x20   let idx = 1024;\n\
               \x20   scaled * 1e-9 + idx as f64\n\
               }\n";
    assert_clean(SIM_LIB, src);
}

#[test]
fn const_provenance_exempt_in_constants_modules_and_non_sim_crates() {
    let src = "pub fn f() -> f64 { 273.15 }\n";
    assert_clean("crates/fleet/src/constants.rs", src);
    assert_clean(CORE_LIB, src);
}

#[test]
fn const_provenance_allow_silences() {
    let src = "pub fn f() -> f64 {\n\
               \x20   // lint:allow(const-provenance) test probe value\n\
               \x20   273.15\n\
               }\n";
    let diags = lint_source(SIM_LIB, src);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::ConstProvenance),
        "got {diags:?}"
    );
}

// ---------------------------------------------------- fix-allow + baseline

#[test]
fn fix_allow_renders_paste_ready_lines() {
    let src = include_str!("fixtures/const_magic.rs");
    let diags = lint_source(SIM_LIB, src);
    assert!(!diags.is_empty());
    let rendered = xtask::render_fix_allow(&diags);
    assert!(
        rendered.contains("crates/fleet/src/sim.rs:"),
        "got {rendered}"
    );
    assert!(
        rendered.contains("// lint:allow(const-provenance) TODO: one-line justification"),
        "got {rendered}"
    );
    // Pasting the rendered comment above the flagged line silences it.
    let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
    lines.insert(
        diags[0].line - 1,
        "    // lint:allow(const-provenance) fixture probe".to_string(),
    );
    let patched = lines.join("\n");
    assert_clean(SIM_LIB, &patched);
}

// ----------------------------------------------------------- stream crate

/// The streaming pipeline is both a SIM crate member and an obs-coverage
/// hot file; the planted router fixture must trip both graph rules there.
const STREAM_PIPELINE: &str = "crates/stream/src/pipeline.rs";

#[test]
fn stream_pipeline_fixture_trips_taint_and_obs_coverage() {
    let src = include_str!("fixtures/stream_gap.rs");
    let hits = rules_hit(STREAM_PIPELINE, src);
    assert!(hits.contains(&Rule::DeterminismTaint), "got {hits:?}");
    assert!(hits.contains(&Rule::ObsCoverage), "got {hits:?}");
}

#[test]
fn stream_fixture_clean_when_ordered_and_instrumented() {
    // The corrected form of the same router: BTreeMap ordering plus span
    // evidence in the drain loop.
    let src = "use std::collections::BTreeMap;\n\
               pub struct ShardRouter {\n\
               \x20   depths: BTreeMap<u64, usize>,\n\
               }\n\
               impl ShardRouter {\n\
               \x20   pub fn drain_backlog(&mut self, o: &Obs) -> usize {\n\
               \x20       let _span = o.span(\"stream.drain\");\n\
               \x20       let mut drained = 0;\n\
               \x20       for (_shard, depth) in self.depths.iter() { drained += depth; }\n\
               \x20       drained\n\
               \x20   }\n\
               }\n";
    assert_clean(STREAM_PIPELINE, src);
}

#[test]
fn stream_graph_rules_scope_to_the_hot_path() {
    // Same source outside the sim crates: neither graph rule fires.
    let src = include_str!("fixtures/stream_gap.rs");
    let diags = lint_source(CORE_LIB, src);
    assert!(
        !diags
            .iter()
            .any(|d| matches!(d.rule, Rule::DeterminismTaint | Rule::ObsCoverage)),
        "got {diags:?}"
    );
    // And in a stream file that is not the pipeline hot file, only the
    // taint rule (crate-wide) applies, not obs-coverage (file-scoped).
    let diags = lint_source("crates/stream/src/queue.rs", src);
    assert!(
        diags.iter().any(|d| d.rule == Rule::DeterminismTaint),
        "got {diags:?}"
    );
    assert!(
        !diags.iter().any(|d| d.rule == Rule::ObsCoverage),
        "got {diags:?}"
    );
}

#[test]
fn stream_crate_bans_nondeterminism_sources() {
    // SIM_CRATES membership also turns on the point determinism rule.
    let src = "fn f() { let _r = rand::thread_rng(); }\n";
    let hits = rules_hit("crates/stream/src/source.rs", src);
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
}

// ------------------------------------------------------------- prof crate

/// The profiler aggregates over span trees; its passes must stay
/// layout-independent so a profile of a deterministic run is itself
/// deterministic. SIM_CRATES membership turns the taint rules on.
const PROF_LIB: &str = "crates/prof/src/profile.rs";

#[test]
fn prof_taint_fixture_trips_determinism_taint() {
    let src = include_str!("fixtures/prof_taint.rs");
    let diags = lint_source(PROF_LIB, src);
    let msgs: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::DeterminismTaint)
        .map(|d| d.message.as_str())
        .collect();
    // Both the hash-ordered hotspot ranking and the float fold fire.
    assert_eq!(msgs.len(), 2, "got {diags:?}");
}

#[test]
fn prof_fixture_clean_when_btree_ordered() {
    // The corrected form of the same pass: BTreeMap keys aggregate in name
    // order, so ranking and folding are layout-independent.
    let src = "use std::collections::BTreeMap;\n\
               pub fn hotspots(self_time: &BTreeMap<String, f64>) -> Vec<(String, f64)> {\n\
               \x20   let mut rows: Vec<(String, f64)> = self_time\n\
               \x20       .iter()\n\
               \x20       .map(|(name, micros)| (name.clone(), *micros))\n\
               \x20       .collect();\n\
               \x20   rows.truncate(10);\n\
               \x20   rows\n\
               }\n\
               pub fn total_self(self_time: &BTreeMap<String, f64>) -> f64 {\n\
               \x20   self_time.values().sum::<f64>()\n\
               }\n";
    assert_clean(PROF_LIB, src);
}

#[test]
fn prof_taint_not_enforced_outside_sim_crates() {
    let src = include_str!("fixtures/prof_taint.rs");
    let diags = lint_source(CORE_LIB, src);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::DeterminismTaint),
        "got {diags:?}"
    );
}

#[test]
fn prof_crate_bans_nondeterminism_sources() {
    // Wall-clock reads inside the profiler would silently mix measurement
    // noise into the deterministic work-counter profiles.
    let src = "fn f() { let _t = std::time::Instant::now(); }\n";
    let hits = rules_hit("crates/prof/src/tree.rs", src);
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
}

// -------------------------------------------------------------- des crate

/// The event engine's dispatch order IS the simulation's semantics: a
/// hash-ordered handler registry or cancel set would make the event log
/// layout-dependent. SIM_CRATES membership turns the taint rules on.
const DES_LIB: &str = "crates/des/src/engine.rs";

#[test]
fn des_registry_fixture_trips_determinism_taint() {
    let src = include_str!("fixtures/des_registry.rs");
    let diags = lint_source(DES_LIB, src);
    let msgs: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::DeterminismTaint)
        .map(|d| d.message.as_str())
        .collect();
    // Both the hash-ordered dispatch sweep and the cancel-set retain fire.
    assert_eq!(msgs.len(), 2, "got {diags:?}");
}

#[test]
fn des_fixture_clean_when_densely_indexed_and_btree_ordered() {
    // The corrected form of the same registry — the shape the real engine
    // uses: handlers in a dense per-kind vector, the cancel set ordered.
    let src = "use std::collections::BTreeSet;\n\
               pub struct HandlerRegistry {\n\
               \x20   handlers: Vec<Vec<String>>,\n\
               \x20   cancelled: BTreeSet<u64>,\n\
               }\n\
               impl HandlerRegistry {\n\
               \x20   pub fn dispatch_all(&mut self) -> Vec<String> {\n\
               \x20       let mut fired = Vec::new();\n\
               \x20       for names in self.handlers.iter() {\n\
               \x20           fired.extend(names.iter().cloned());\n\
               \x20       }\n\
               \x20       fired\n\
               \x20   }\n\
               \x20   pub fn drop_cancelled(&mut self) -> usize {\n\
               \x20       let dropped = self.cancelled.len();\n\
               \x20       self.cancelled.retain(|seq| *seq == 0);\n\
               \x20       dropped\n\
               \x20   }\n\
               }\n";
    assert_clean(DES_LIB, src);
}

#[test]
fn des_taint_not_enforced_outside_sim_crates() {
    let src = include_str!("fixtures/des_registry.rs");
    let diags = lint_source(CORE_LIB, src);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::DeterminismTaint),
        "got {diags:?}"
    );
}

#[test]
fn des_crate_bans_nondeterminism_sources() {
    // Wall-clock or ambient randomness inside the engine would break the
    // same-seed-same-log replay contract the proptests pin.
    let src = "fn f() { let _r = rand::thread_rng(); }\n";
    let hits = rules_hit("crates/des/src/event.rs", src);
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
}

#[test]
fn fix_allow_reports_clean_lint() {
    assert!(xtask::render_fix_allow(&[]).contains("clean"));
}

#[test]
fn baseline_counts_parse_from_json_report() {
    let json = "{\n  \"files_scanned\": 3,\n  \"violations\": 2,\n  \"by_rule\": {\n    \
                \"determinism\": 1,\n    \"determinism-taint\": 2,\n    \"unit-leak\": 0\n  },\n  \
                \"diagnostics\": []\n}";
    let counts = xtask::parse_baseline_counts(json);
    // `determinism` must not swallow `determinism-taint`'s count (or vice
    // versa): the lookup is exact on the quoted key.
    assert_eq!(counts.get("determinism").copied(), Some(1));
    assert_eq!(counts.get("determinism-taint").copied(), Some(2));
    assert_eq!(counts.get("unit-leak").copied(), Some(0));
    assert_eq!(counts.get("obs-coverage").copied(), None);
}
