//! Fixture tests for every lint rule: one violating snippet, one clean
//! snippet, and one snippet silenced with `lint:allow(<rule>)` per rule.

use xtask::{lint_source, Rule};

/// Path that classifies as library source inside a simulation crate, so all
/// seven rules (including determinism and thread-discipline) are in force.
const SIM_LIB: &str = "crates/fleet/src/sim.rs";
/// Library source outside the simulation crates (determinism not enforced).
const CORE_LIB: &str = "crates/core/src/embodied.rs";

fn rules_hit(path: &str, source: &str) -> Vec<Rule> {
    lint_source(path, source)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

fn assert_clean(path: &str, source: &str) {
    let diags = lint_source(path, source);
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

// ---------------------------------------------------------------- unit-leak

#[test]
fn unit_leak_flags_raw_f64_with_unit_suffix() {
    let src = "pub fn total_joules(x: f64) -> f64 { x }\n";
    let hits = rules_hit(CORE_LIB, src);
    assert!(hits.contains(&Rule::UnitLeak), "got {hits:?}");
}

#[test]
fn unit_leak_flags_pub_struct_field() {
    let src = "pub struct Report {\n    pub embodied_kg: f64,\n}\n";
    let hits = rules_hit(CORE_LIB, src);
    assert!(hits.contains(&Rule::UnitLeak), "got {hits:?}");
}

#[test]
fn unit_leak_clean_on_newtype_api() {
    assert_clean(
        CORE_LIB,
        "pub fn total(x: Energy) -> Energy { x }\npub fn speed(p: Power) -> Power { p }\n",
    );
}

#[test]
fn unit_leak_exempts_conversion_boundary() {
    // `from_*` / `as_*` functions are the newtype boundary itself.
    assert_clean(
        CORE_LIB,
        "impl Energy {\n    pub fn as_joules(self) -> f64 { self.0 }\n}\n",
    );
}

#[test]
fn unit_leak_allow_silences() {
    let src = "// lint:allow(unit-leak) FFI boundary keeps raw joules\n\
               pub fn total_joules(x: f64) -> f64 { x }\n";
    assert_clean(CORE_LIB, src);
}

// ----------------------------------------------------------------- float-eq

#[test]
fn float_eq_flags_exact_comparison() {
    let src = "fn f(x: f64) -> bool { x == 0.5 }\n";
    let hits = rules_hit(CORE_LIB, src);
    assert!(hits.contains(&Rule::FloatEq), "got {hits:?}");
}

#[test]
fn float_eq_clean_on_integer_and_ordering() {
    assert_clean(
        CORE_LIB,
        "fn f(x: u64, y: f64) -> bool { x == 3 && y <= 0.5 && y >= 0.1 }\n",
    );
}

#[test]
fn float_eq_allow_silences() {
    let src =
        "fn f(x: f64) -> bool {\n    // lint:allow(float-eq) sentinel compare\n    x == 0.0\n}\n";
    assert_clean(CORE_LIB, src);
}

// --------------------------------------------------------- panic-discipline

#[test]
fn panic_discipline_flags_unwrap_expect_panic_and_index() {
    let src = "fn f(v: &[f64]) -> f64 {\n\
               \x20   let a = v.first().unwrap();\n\
               \x20   let b = v.last().expect(\"non-empty\");\n\
               \x20   if v.is_empty() { panic!(\"empty\"); }\n\
               \x20   a + b + v[0]\n\
               }\n";
    let hits = rules_hit(CORE_LIB, src);
    let n = hits.iter().filter(|r| **r == Rule::PanicDiscipline).count();
    assert_eq!(n, 4, "got {hits:?}");
}

#[test]
fn panic_discipline_clean_in_tests_and_benches() {
    let src = "fn f(v: &[f64]) -> f64 { v.first().unwrap() + v[0] }\n";
    assert_clean("crates/core/tests/embodied.rs", src);
    assert_clean("crates/bench/src/figs/fig1.rs", src);
}

#[test]
fn panic_discipline_clean_in_cfg_test_module() {
    let src = "fn safe() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { Some(1).unwrap(); }\n\
               }\n";
    assert_clean(CORE_LIB, src);
}

#[test]
fn panic_discipline_allow_silences_next_code_line() {
    let src = "fn f(v: &[f64]) -> f64 {\n\
               \x20   // lint:allow(panic-discipline) guarded by the caller\n\
               \x20   v.first().expect(\"non-empty\") + 1.0\n\
               }\n";
    assert_clean(CORE_LIB, src);
}

// -------------------------------------------------------------- determinism

#[test]
fn determinism_flags_wall_clock_and_thread_rng() {
    let src = "fn f() {\n\
               \x20   let _t = std::time::Instant::now();\n\
               \x20   let _r = rand::thread_rng();\n\
               }\n";
    let hits = rules_hit(SIM_LIB, src);
    let n = hits.iter().filter(|r| **r == Rule::Determinism).count();
    assert_eq!(n, 2, "got {hits:?}");
}

#[test]
fn determinism_flags_hashmap_iteration_order() {
    let src = "use std::collections::HashMap;\n";
    let hits = rules_hit(SIM_LIB, src);
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
}

#[test]
fn determinism_not_enforced_outside_sim_crates() {
    assert_clean(CORE_LIB, "use std::collections::HashMap;\n");
}

#[test]
fn determinism_enforced_in_obs_crate() {
    let src = "fn f() { let _r = rand::thread_rng(); }\n";
    let hits = rules_hit("crates/obs/src/recorder.rs", src);
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
}

#[test]
fn determinism_permits_wall_clock_only_in_obs_clock_module() {
    // The sanctioned site: `WallClock::now` in sustain-obs's clock module.
    assert_clean(
        "crates/obs/src/clock.rs",
        "fn now_wall() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    // The carve-out is for the wall clock only; other nondeterminism in the
    // clock module is still flagged.
    let hits = rules_hit(
        "crates/obs/src/clock.rs",
        "fn f() { let _r = rand::thread_rng(); }\n",
    );
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
    // And `Instant::now` anywhere else in sustain-obs is still flagged.
    let hits = rules_hit(
        "crates/obs/src/recorder.rs",
        "fn f() { let _t = std::time::Instant::now(); }\n",
    );
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
    // Other simulation crates never get the carve-out.
    let hits = rules_hit(
        "crates/fleet/src/clock.rs",
        "fn f() { let _t = std::time::Instant::now(); }\n",
    );
    assert!(hits.contains(&Rule::Determinism), "got {hits:?}");
}

#[test]
fn determinism_allow_silences() {
    let src = "// lint:allow(determinism) diagnostics only, not part of results\n\
               use std::collections::HashMap;\n";
    assert_clean(SIM_LIB, src);
}

// -------------------------------------------------------- thread-discipline

#[test]
fn thread_discipline_flags_spawn_and_scope_in_library_code() {
    let src = "fn f() {\n\
               \x20   std::thread::spawn(|| {});\n\
               \x20   std::thread::scope(|_s| {});\n\
               }\n";
    let hits = rules_hit(SIM_LIB, src);
    let n = hits
        .iter()
        .filter(|r| **r == Rule::ThreadDiscipline)
        .count();
    assert_eq!(n, 2, "got {hits:?}");
    // Enforced outside the simulation crates too.
    let hits = rules_hit(CORE_LIB, "fn f() { std::thread::spawn(|| {}); }\n");
    assert!(hits.contains(&Rule::ThreadDiscipline), "got {hits:?}");
}

#[test]
fn thread_discipline_permits_par_and_obs_crates() {
    let src = "fn f() { std::thread::scope(|_s| {}); }\n";
    assert_clean("crates/par/src/pool.rs", src);
    assert_clean("crates/obs/src/recorder.rs", src);
}

#[test]
fn thread_discipline_clean_in_tests_and_benches() {
    let src = "fn f() { std::thread::spawn(|| {}); }\n";
    assert_clean("crates/fleet/tests/sim.rs", src);
    assert_clean("crates/bench/src/figs/fig1.rs", src);
}

#[test]
fn thread_discipline_allow_silences() {
    let src = "fn f() {\n\
               \x20   // lint:allow(thread-discipline) one-shot watchdog, not a fan-out\n\
               \x20   std::thread::spawn(|| {});\n\
               }\n";
    assert_clean(SIM_LIB, src);
}

// ----------------------------------------------------------- magic-constant

#[test]
fn magic_constant_flags_bare_literal_in_unit_ctor() {
    let src = "fn f() -> Energy { Energy::from_kilowatt_hours(201.0) }\n";
    let hits = rules_hit(CORE_LIB, src);
    assert!(hits.contains(&Rule::MagicConstant), "got {hits:?}");
}

#[test]
fn magic_constant_clean_on_named_constant_and_zero() {
    assert_clean(
        CORE_LIB,
        "fn f() -> Energy { Energy::from_kilowatt_hours(crate::constants::RUN_KWH) }\n\
         fn g() -> Energy { Energy::from_joules(0.0) }\n",
    );
}

#[test]
fn magic_constant_exempt_in_constants_module() {
    let src = "pub fn preset() -> Power { Power::from_watts(7.5) }\n";
    assert_clean("crates/edge/src/constants.rs", src);
}

#[test]
fn magic_constant_allow_silences() {
    let src = "fn f() -> Energy {\n\
               \x20   // lint:allow(magic-constant) 1 kWh probe, not a constant\n\
               \x20   Energy::from_kilowatt_hours(1.0)\n\
               }\n";
    assert_clean(CORE_LIB, src);
}

// -------------------------------------------------------------- lint-header

#[test]
fn lint_header_flags_crate_root_without_forbid() {
    let src = "//! A crate.\n#![deny(missing_docs)]\npub fn f() {}\n";
    let hits = rules_hit("crates/core/src/lib.rs", src);
    assert!(hits.contains(&Rule::LintHeader), "got {hits:?}");
}

#[test]
fn lint_header_clean_with_forbid() {
    assert_clean(
        "crates/core/src/lib.rs",
        "//! A crate.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n",
    );
}

#[test]
fn lint_header_only_applies_to_crate_roots() {
    assert_clean(CORE_LIB, "pub fn f() {}\n");
}

// ------------------------------------------------------------ allow plumbing

#[test]
fn allow_only_covers_adjacent_code_line() {
    // The allow covers the first expect but NOT the one two code lines down.
    let src = "fn f(v: &[f64]) -> f64 {\n\
               \x20   // lint:allow(panic-discipline) guarded\n\
               \x20   let a = v.first().expect(\"a\");\n\
               \x20   let b = v.last().expect(\"b\");\n\
               \x20   a + b\n\
               }\n";
    let diags = lint_source(CORE_LIB, src);
    assert_eq!(diags.len(), 1, "got {diags:?}");
    assert_eq!(diags[0].line, 4);
}

#[test]
fn allow_of_other_rule_does_not_silence() {
    let src = "// lint:allow(float-eq) wrong rule\n\
               pub fn total_joules(x: f64) -> f64 { x }\n";
    let hits = rules_hit(CORE_LIB, src);
    assert!(hits.contains(&Rule::UnitLeak), "got {hits:?}");
}

#[test]
fn diagnostics_carry_file_line_and_render() {
    let diags = lint_source(CORE_LIB, "fn f(x: f64) -> bool { x == 0.5 }\n");
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/embodied.rs:1: [float-eq]"),
        "got {rendered}"
    );
}

// ------------------------------------------------------------ fs-discipline

#[test]
fn fs_discipline_flags_writes_in_library_code() {
    let src = "pub fn save(report: &str) {\n    let _ = std::fs::write(\"out.json\", report);\n}\n";
    let hits = rules_hit(SIM_LIB, src);
    assert!(hits.contains(&Rule::FsDiscipline), "got {hits:?}");
}

#[test]
fn fs_discipline_flags_writes_in_unsanctioned_binaries() {
    // Unlike the library-only rules, write discipline reaches `bin` sources.
    let src = "fn main() {\n    let _ = std::fs::File::create(\"dump.bin\");\n    let _ = std::fs::create_dir_all(\"out\");\n}\n";
    let hits = rules_hit("crates/fleet/src/bin/dump.rs", src);
    assert_eq!(
        hits.iter().filter(|r| **r == Rule::FsDiscipline).count(),
        2,
        "got {hits:?}"
    );
}

#[test]
fn fs_discipline_clean_inside_cache_crate() {
    // The cache crate owns persistence: its stores write freely.
    assert_clean(
        "crates/cache/src/store.rs",
        "pub fn save(dir: &Path) {\n    let _ = std::fs::create_dir_all(dir);\n    let _ = std::fs::rename(\"a\", \"b\");\n}\n",
    );
}

#[test]
fn fs_discipline_clean_on_sanctioned_exporter_sites() {
    let src = "fn write_exports() {\n    let _ = std::fs::write(\"events.jsonl\", \"{}\");\n}\n";
    assert_clean("crates/bench/src/bin/all_figures.rs", src);
    assert_clean("crates/bench/src/bin/bench_suite.rs", src);
}

#[test]
fn fs_discipline_clean_in_test_code() {
    // Integration tests and benches write temp fixtures freely.
    let src = "fn setup() {\n    let _ = std::fs::remove_dir_all(\"tmp\");\n    let _ = std::fs::File::create(\"tmp/x\");\n}\n";
    assert_clean("crates/fleet/tests/replica_cache.rs", src);
    assert_clean("tests/cache_correctness.rs", src);
    assert_clean("crates/bench/benches/figures.rs", src);
}

#[test]
fn fs_discipline_allow_silences() {
    let src = "// lint:allow(fs-discipline) one-shot debug dump, never in CI\n\
               pub fn dump(s: &str) { let _ = std::fs::write(\"dbg.txt\", s); }\n";
    assert_clean(SIM_LIB, src);
}

#[test]
fn fs_discipline_reads_stay_clean() {
    // Only write primitives are disciplined; reads are unrestricted.
    assert_clean(
        SIM_LIB,
        "pub fn load(p: &Path) -> Option<String> {\n    std::fs::read_to_string(p).ok()\n}\n",
    );
}
