//! Planted violation: `horizon` was added to the struct but never reached
//! the key encoder — the exact stale-cache bug class the rule exists for.
//! Linted under a simulation-crate path by the fixture tests; never compiled.

pub struct ScenarioKey {
    seed: u64,
    arrivals: f64,
    horizon: f64,
}

impl CacheKey for ScenarioKey {
    fn namespace(&self) -> &'static str {
        "scenario"
    }

    fn encode_key(&self, encoder: &mut KeyEncoder) {
        encoder.write_u64(self.seed);
        encoder.write_f64(self.arrivals);
        // self.horizon is missing: the cache will serve results computed
        // for a different horizon.
    }
}
