//! Planted violation: unprovenanced multi-digit float literals in a
//! simulation fn body. Linted under a simulation-crate path by the fixture
//! tests; never compiled.

pub fn water_boils(celsius: f64) -> bool {
    // 273.15 and 373.124 belong in a constants module with a source.
    celsius + 273.15 > 373.124
}
