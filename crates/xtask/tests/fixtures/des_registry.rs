//! Planted violation: a discrete-event handler registry keyed on a
//! `HashMap`. Draining the pending-kind set to dispatch makes handler
//! firing order depend on hash layout — two runs of the "same" schedule
//! interleave their side effects differently, so the event log (and every
//! rollup built on it) diffs against itself. The real engine indexes
//! handlers by a dense `EventKind::index()` vector and keeps its cancel
//! set in a `BTreeSet`. Linted under a `crates/des` path by the fixture
//! tests; never compiled.

use std::collections::{HashMap, HashSet};

pub struct HandlerRegistry {
    handlers: HashMap<u64, Vec<String>>,
    cancelled: HashSet<u64>,
}

impl HandlerRegistry {
    pub fn dispatch_all(&mut self) -> Vec<String> {
        let mut fired = Vec::new();
        for (_kind, names) in self.handlers.iter() {
            fired.extend(names.iter().cloned());
        }
        fired
    }

    pub fn drop_cancelled(&mut self) -> usize {
        let dropped = self.cancelled.len();
        self.cancelled.retain(|seq| *seq == 0);
        dropped
    }
}
