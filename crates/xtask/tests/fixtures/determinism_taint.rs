//! Planted violation: iterating a `HashMap` (and folding floats over it)
//! inside a simulation crate. Linted under a simulation-crate path by the
//! fixture tests; never compiled.

use std::collections::HashMap;

pub fn total_energy(by_job: &HashMap<u64, f64>) -> f64 {
    // Arbitrary iteration order + non-associative float addition: the sum
    // changes between runs with the same seed.
    by_job.values().sum::<f64>()
}

pub fn prune(mut live: HashMap<u64, f64>) -> usize {
    live.retain(|_, joules| *joules > 0.0);
    live.len()
}
