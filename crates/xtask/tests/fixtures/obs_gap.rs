//! Planted violation: a loop-bearing pub fn in a hot-path file with no
//! span and no obs handle. Linted under the `crates/fleet/src/sim.rs` path
//! by the fixture tests; never compiled.

pub fn replay(steps: &[f64]) -> f64 {
    let mut total = 0.0;
    for s in steps {
        total += s;
    }
    total
}
