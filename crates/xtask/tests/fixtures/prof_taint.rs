//! Planted violation: a profile aggregation pass keyed on a `HashMap`.
//! Iterating it to rank hotspots makes the rendered report depend on hash
//! layout — ties between equal self-times land in hash order, and the
//! float fold accumulates in a different order each run, so the "same"
//! profile diffs against itself. Linted under a `crates/prof` path by the
//! fixture tests; never compiled.

use std::collections::HashMap;

pub fn hotspots(self_time: &HashMap<String, f64>) -> Vec<(String, f64)> {
    let mut rows: Vec<(String, f64)> = self_time
        .iter()
        .map(|(name, micros)| (name.clone(), *micros))
        .collect();
    rows.truncate(10);
    rows
}

pub fn total_self(self_time: &HashMap<String, f64>) -> f64 {
    self_time.values().sum::<f64>()
}
