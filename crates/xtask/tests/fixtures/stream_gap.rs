//! Planted fixture: a streaming shard router with the two defects the
//! `sustain-stream` lint coverage must catch — queue depths folded by
//! iterating a `HashMap` (determinism-taint: shard order would depend on
//! hash state), and a public drain loop with no instrumentation evidence
//! (`crates/stream/src/pipeline.rs` is an obs-coverage hot file).

use std::collections::HashMap;

pub struct ShardRouter {
    depths: HashMap<u64, usize>,
}

impl ShardRouter {
    pub fn drain_backlog(&mut self) -> usize {
        let mut drained = 0;
        for (_shard, depth) in self.depths.iter() {
            drained += depth;
        }
        drained
    }
}
