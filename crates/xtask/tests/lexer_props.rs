//! Property tests holding the two comment/string scanners to agreement.
//!
//! `lexer::lex` (whole-file token stream) and `sanitize::split_lines`
//! (per-line code/comment channels) implement the same lexical semantics
//! independently — nested block comments, raw strings, escapes,
//! char-vs-lifetime ticks. These tests generate random Rust-like sources
//! from a fragment pool and check that:
//!
//! 1. token byte offsets round-trip: spans are ordered, non-overlapping,
//!    land on UTF-8 boundaries, slice back to the token text, and the gaps
//!    between tokens are pure whitespace;
//! 2. the two scanners agree on masking: identifiers and numbers the lexer
//!    emits are visible in the sanitizer's code channel, comment content
//!    the sanitizer extracts is covered by a `Comment` token, and lines
//!    with no tokens carry no code.
//!
//! A masking bug in either pass shows up here as a differential failure
//! instead of a silently mis-scanned file.

use proptest::prelude::*;
use xtask::lexer::{lex, Token, TokenKind};
use xtask::sanitize::split_lines;

/// Fragment pool the generator draws from. Every fragment is
/// self-terminating (closed string, closed comment), so the scanner state
/// returns to plain code between fragments and any interleaving is a
/// well-formed source.
const FRAGMENTS: &[&str] = &[
    // Identifiers and keywords (`r` and `b` are deliberate: followed by a
    // separator they must lex as idents, not raw-string openers).
    "fn",
    "run_replicas",
    "HashMap",
    "_x1",
    "r",
    "b",
    // Numbers across the lexer's forms.
    "42",
    "0.25",
    "1e3",
    "6.25e-4",
    "2E+10",
    "0xff_u32",
    "1_000.5f64",
    "0..10",
    // Strings: plain, escaped quote, raw with hashes, byte, multi-line.
    "\"hello world\"",
    "\"esc \\\" aped // not a comment\"",
    "r#\"raw \"quote\" body\"#",
    "br\"byte raw\"",
    "\"multi\nline == 0.0\nliteral\"",
    // Chars and lifetimes.
    "'x'",
    "'\\n'",
    "'\"'",
    "'a",
    "'static",
    // Comments: line, block, nested, multi-line.
    "// line comment tail",
    "/* block */",
    "/* multi\nline\nblock */",
    "/* outer /* nested */ tail */",
    // Punctuation and operators (multi-char ops arrive as adjacent tokens).
    "{",
    "}",
    "(",
    ")",
    ";",
    ":",
    "->",
    "==",
    ".",
    "&",
    "::",
    "#",
    // Non-ASCII: lexed as a Punct token, kept in the code channel.
    "µ",
    // Explicit line breaks so fragments land on many lines.
    "\n",
    "\n\n",
];

/// Assembles a source from pool indices, space-separated so fragments
/// never merge (e.g. ident `r` + `"` would otherwise open a raw string).
fn assemble(indices: &[usize]) -> String {
    let parts: Vec<&str> = indices
        .iter()
        .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
        .collect();
    parts.join(" ")
}

/// 1-based line number of byte offset `at` in `src`.
fn line_of(src: &str, at: usize) -> usize {
    1 + src.as_bytes()[..at].iter().filter(|&&b| b == b'\n').count()
}

fn check_offsets_round_trip(src: &str, tokens: &[Token]) {
    let mut prev_end = 0usize;
    for t in tokens {
        assert!(
            t.start <= t.end && t.end <= src.len(),
            "span out of bounds: {t}"
        );
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span not on char boundaries: {t}"
        );
        assert!(prev_end <= t.start, "overlapping tokens at {}", t.start);
        // The gap between consecutive tokens is pure whitespace: the lexer
        // only ever skips whitespace outside a token.
        assert!(
            src[prev_end..t.start].chars().all(char::is_whitespace),
            "non-whitespace gap before {t}: {:?}",
            &src[prev_end..t.start]
        );
        match t.kind {
            // Str/Char bodies are elided and Comment text drops delimiters;
            // everything else slices back exactly.
            TokenKind::Str | TokenKind::Char | TokenKind::Comment => {}
            _ => assert_eq!(
                &src[t.start..t.end],
                t.text,
                "slice mismatch at {}",
                t.start
            ),
        }
        assert_eq!(t.line, line_of(src, t.start), "line mismatch for {t}");
        prev_end = t.end;
    }
    assert!(
        src[prev_end..].chars().all(char::is_whitespace),
        "non-whitespace tail after last token"
    );
}

fn check_masking_agreement(src: &str, tokens: &[Token]) {
    let views = split_lines(src);

    // Code-channel visibility: every ident/number the lexer emits sits in
    // code position, so the sanitizer must keep it verbatim on that line.
    for t in tokens {
        if matches!(t.kind, TokenKind::Ident | TokenKind::Number) {
            let code = &views[t.line - 1].code;
            assert!(
                code.contains(&t.text),
                "line {}: {:?} missing from code channel {:?}",
                t.line,
                t.text,
                code
            );
        }
    }

    // Comment agreement: whenever the sanitizer extracted comment text on a
    // line, some Comment token's span must cover that line.
    for (idx, view) in views.iter().enumerate() {
        let lineno = idx + 1;
        if view.comment.trim().is_empty() {
            continue;
        }
        let covered = tokens.iter().any(|t| {
            t.kind == TokenKind::Comment && t.line <= lineno && line_of(src, t.end) >= lineno
        });
        assert!(
            covered,
            "line {lineno}: sanitizer found comment {:?} but no Comment token covers it",
            view.comment
        );
    }

    // Line comments are single-channel: the token body (text after `//`)
    // must equal the tail of that line's comment channel.
    for t in tokens {
        if t.kind == TokenKind::Comment && src[t.start..].starts_with("//") {
            let comment = &views[t.line - 1].comment;
            assert!(
                comment.ends_with(&t.text),
                "line {}: comment channel {:?} does not end with token body {:?}",
                t.line,
                comment,
                t.text
            );
        }
    }

    // Token-free lines carry no code: if no token starts on a line and no
    // multi-line token (string/comment) spans across it, the sanitizer must
    // see only whitespace there.
    for (idx, view) in views.iter().enumerate() {
        let lineno = idx + 1;
        let has_start = tokens.iter().any(|t| t.line == lineno);
        let spanned = tokens
            .iter()
            .any(|t| t.line <= lineno && line_of(src, t.end.min(src.len())) >= lineno);
        if !has_start && !spanned {
            assert!(
                view.code.trim().is_empty() && view.comment.trim().is_empty(),
                "line {lineno}: no token covers it but sanitizer sees {:?} / {:?}",
                view.code,
                view.comment
            );
        }
    }
}

proptest! {
    /// Byte offsets round-trip on arbitrary fragment interleavings.
    #[test]
    fn offsets_round_trip(indices in prop::collection::vec(0usize..1000, 1..60)) {
        let src = assemble(&indices);
        let tokens = lex(&src);
        check_offsets_round_trip(&src, &tokens);
    }

    /// The lexer and the sanitizer agree on comment/string masking.
    #[test]
    fn masking_agrees_with_sanitizer(indices in prop::collection::vec(0usize..1000, 1..60)) {
        let src = assemble(&indices);
        let tokens = lex(&src);
        check_masking_agreement(&src, &tokens);
    }

    /// Nothing inside a string or char literal ever surfaces as an
    /// ident/number token — the lint rules' core masking guarantee.
    #[test]
    fn literal_bodies_never_leak(indices in prop::collection::vec(0usize..1000, 1..60)) {
        let src = assemble(&indices);
        for t in lex(&src) {
            match t.kind {
                TokenKind::Str => prop_assert_eq!(t.text.as_str(), "\"\""),
                TokenKind::Char => prop_assert_eq!(t.text.as_str(), "''"),
                _ => {}
            }
        }
    }
}

/// Deterministic spot check: the fragment pool itself exercises every
/// token kind, so the property runs are not vacuous.
#[test]
fn fragment_pool_covers_all_token_kinds() {
    let src = FRAGMENTS.join(" ");
    let tokens = lex(&src);
    let has = |k: fn(&TokenKind) -> bool| tokens.iter().any(|t| k(&t.kind));
    assert!(has(|k| *k == TokenKind::Ident));
    assert!(has(|k| *k == TokenKind::Number));
    assert!(has(|k| *k == TokenKind::Str));
    assert!(has(|k| *k == TokenKind::Char));
    assert!(has(|k| *k == TokenKind::Lifetime));
    assert!(has(|k| *k == TokenKind::Comment));
    assert!(has(|k| matches!(k, TokenKind::Punct(_))));
    check_offsets_round_trip(&src, &tokens);
    check_masking_agreement(&src, &tokens);
}
