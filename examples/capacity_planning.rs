//! Capacity planning under the paper's growth trends (Fig 2d + §III-C):
//! the embodied-carbon pipeline of 2.9×/1.5 y training-capacity growth, the
//! efficiency-of-scale lever, and the hardware life-extension trade-off.
//!
//! ```sh
//! cargo run --example capacity_planning
//! ```

use sustainai::fleet::capacity::{density_ablation, CapacityPlan};
use sustainai::fleet::lifetime::{optimal_lifetime, LifetimeTradeoff};
use sustainai::fleet::server::{ServerKind, ServerSku};
use sustainai::workload::datagrowth::GrowthTrend;

fn main() {
    // Deploy for 2.9x/1.5y training-demand growth over 3 years.
    let sku = ServerSku::preset(ServerKind::GpuTraining);
    let plan = CapacityPlan::plan(&GrowthTrend::training_capacity(), 500.0, &sku, 1.0, 6);
    println!("training-capacity plan (demand 2.9x per 1.5y, 3 years):");
    for step in plan.steps() {
        println!(
            "  half-year {}: demand {:>7.0}  in service {:>5}  added {:>4}  embodied +{}",
            step.period,
            step.demand,
            step.servers_in_service,
            step.servers_added,
            step.embodied_added
        );
    }
    println!(
        "  total embodied committed: {} across {} servers\n",
        plan.total_embodied(),
        plan.final_servers()
    );

    // Efficiency of scale: a 4x-denser accelerator SKU for the same demand.
    let cpu = ServerSku::preset(ServerKind::Inference);
    let (base, dense) = density_ablation(
        &GrowthTrend::inference_capacity(),
        2000.0,
        &cpu,
        &sku,
        4.0,
        6,
    );
    println!("efficiency of scale (inference, 2.5x/1.5y growth, 3 years):");
    println!(
        "  CPU fleet:        {:>6} servers, embodied {}",
        base.final_servers(),
        base.total_embodied()
    );
    println!(
        "  accelerator fleet:{:>6} servers, embodied {}  ({:.1}x less)",
        dense.final_servers(),
        dense.total_embodied(),
        base.total_embodied() / dense.total_embodied()
    );
    println!();

    // Life extension: where is the carbon-optimal decommissioning age?
    let tradeoff = LifetimeTradeoff::gpu_server();
    let grid: Vec<f64> = (1..=10).map(|y| y as f64).collect();
    println!("life-extension trade-off (per server, per service-year):");
    for point in tradeoff.sweep(&grid) {
        println!(
            "  {:>2.0} y: embodied {}  + SDC mitigation {}  = {}",
            point.lifetime.as_years(),
            point.embodied_per_year,
            point.mitigation_per_year,
            point.total_per_year()
        );
    }
    let best = optimal_lifetime(&tradeoff, &grid);
    println!(
        "  carbon-optimal service life: {:.0} years ({}/year)",
        best.lifetime.as_years(),
        best.total_per_year()
    );
}
