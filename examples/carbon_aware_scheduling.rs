//! The §IV-C scenario: shift deferrable training jobs into the solar window,
//! with a battery covering the evening shoulder — the "24/7 carbon-free AI
//! computing" design space.
//!
//! ```sh
//! cargo run --example carbon_aware_scheduling
//! ```

use sustainai::core::intensity::CarbonIntensity;
use sustainai::core::units::{Energy, Fraction, Power, TimeSpan};
use sustainai::fleet::renewable::{SolarTrace, VariableIntensity};
use sustainai::fleet::scheduler::{schedule, IntensitySeries, Policy, ScheduledJob};
use sustainai::fleet::storage::Battery;

fn main() {
    // A grid whose intensity follows a 100 MW solar farm against 150 MW demand.
    let mut grid = VariableIntensity::new(
        CarbonIntensity::from_grams_per_kwh(600.0),
        CarbonIntensity::from_grams_per_kwh(30.0),
        Power::from_megawatts(150.0),
    );
    grid.add_source(SolarTrace::new(Power::from_megawatts(100.0)));

    // Hourly intensity series over three days.
    let hourly: Vec<CarbonIntensity> = (0..72)
        .map(|h| grid.intensity_at(TimeSpan::from_hours(h as f64)))
        .collect();
    let series = IntensitySeries::new(hourly);

    // 36 two-hour training jobs arriving around the clock.
    let jobs: Vec<ScheduledJob> = (0..36)
        .map(|i| ScheduledJob::new(i, (i * 2) as usize, 2, Energy::from_kilowatt_hours(200.0)))
        .collect();

    for (name, policy) in [
        ("immediate (FIFO)", Policy::Immediate),
        (
            "carbon-aware, 6h slack",
            Policy::CarbonAware { max_delay_hours: 6 },
        ),
        (
            "carbon-aware, 24h slack",
            Policy::CarbonAware {
                max_delay_hours: 24,
            },
        ),
    ] {
        let result = schedule(&jobs, &series, policy, None);
        println!(
            "{name:<26} total {}  mean delay {:>4.1} h  peak concurrency {}",
            result.total_co2(),
            result.mean_delay_hours(),
            result.peak_concurrency(&jobs)
        );
    }
    println!();

    // A battery charged from midday solar surplus can carry ~2 MWh into the
    // evening, extending the clean window.
    let mut battery = Battery::new(
        Energy::from_megawatt_hours(4.0),
        Power::from_megawatts(2.0),
        Fraction::saturating(0.9),
    );
    let noon_surplus =
        grid.renewable_output_at(TimeSpan::from_hours(12.0)) - Power::from_megawatts(80.0);
    let drawn = battery.charge(noon_surplus.max(Power::ZERO), TimeSpan::from_hours(4.0));
    let delivered = battery.discharge(Power::from_megawatts(2.0), TimeSpan::from_hours(4.0));
    println!(
        "battery: charged {} from midday surplus, delivered {} into the evening \
         (state of charge now {})",
        drawn,
        delivered,
        battery.state_of_charge()
    );
}
