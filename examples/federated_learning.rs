//! The Figure 11 scenario: estimate the carbon footprint of a production
//! federated-learning application from its (synthetic) 90-day client log and
//! compare against centralized Transformer_Big training.
//!
//! ```sh
//! cargo run --example federated_learning
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sustainai::core::units::{DataVolume, TimeSpan};
use sustainai::edge::carbon::{CentralizedBaseline, EdgeCarbonEstimator};
use sustainai::edge::fl::{FlApp, FlSimReport};

fn main() {
    // 1/20-scale FL-1 for runtime; results scaled back up.
    let scale = 20.0;
    let app = FlApp::new(
        "FL-1",
        100,
        500,
        DataVolume::from_bytes(20e6),
        TimeSpan::from_minutes(4.0),
    );
    let log = app.simulate(&mut StdRng::seed_from_u64(90));
    let summary = FlSimReport::from_log(&log);
    let estimate = EdgeCarbonEstimator::paper_default().estimate(&log);

    println!("FL-1 (90-day window, 1/{scale:.0} scale simulation):");
    println!("  client sessions:     {}", summary.sessions);
    println!("  total compute time:  {}", summary.compute);
    println!("  total comm time:     {}", summary.communication);
    println!("  device energy:       {}", estimate.device_energy);
    println!("  comm energy:         {}", estimate.comm_energy);
    println!("  comm share:          {}", estimate.comm_share());
    println!("  CO2 (scaled to full):{}", estimate.co2 * scale);
    println!();
    println!("centralized Transformer_Big baselines:");
    for b in CentralizedBaseline::ALL {
        println!("  {:<12} {}", b.to_string(), b.co2());
    }
    println!();
    println!(
        "The FL app's footprint is comparable to the grid-powered centralized \
         runs, but the green baselines show the lever edge devices lack: \
         renewable energy."
    );
}
