//! Fleet-scale scenario: a month of research-cluster training on a simulated
//! GPU fleet, reported under both accounting bases — the workload the paper's
//! Figure 10 (utilization) and Figure 5 (embodied share) describe.
//!
//! ```sh
//! cargo run --example fleet_report
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sustainai::core::intensity::{AccountingBasis, GridRegion};
use sustainai::core::units::{Power, TimeSpan};
use sustainai::fleet::cluster::Cluster;
use sustainai::fleet::datacenter::DataCenter;
use sustainai::fleet::sim::FleetSim;
use sustainai::fleet::utilization::UtilizationModel;
use sustainai::workload::training::{JobClass, JobGenerator};

fn main() -> Result<(), sustainai::core::Error> {
    let sim = FleetSim::new(
        Cluster::gpu_training(100),
        DataCenter::hyperscale(
            "prineville",
            GridRegion::UsAverage,
            Power::from_megawatts(20.0),
        ),
        JobGenerator::calibrated(JobClass::Research)?,
        UtilizationModel::research_cluster(),
        80.0, // research workflows arriving per day
        TimeSpan::from_days(30.0),
    );
    let report = sim.run(&mut StdRng::seed_from_u64(2024));

    println!("30-day research fleet simulation (100 GPU servers, 800 GPUs)");
    println!("  IT energy:            {}", report.it_energy);
    println!("  jobs completed:       {}", report.jobs_completed);
    println!("  jobs outstanding:     {}", report.jobs_outstanding);
    println!("  mean GPU allocation:  {}", report.mean_allocation);
    println!("  mean busy utilization:{}", report.mean_busy_utilization);
    println!();
    for basis in [AccountingBasis::LocationBased, AccountingBasis::MarketBased] {
        let fp = report.footprint(basis);
        println!("  [{basis}]");
        println!("    operational:    {}", fp.operational());
        println!("    embodied:       {}", fp.embodied());
        println!("    total:          {}", fp.total());
        println!("    embodied share: {}", fp.embodied_share());
    }
    println!();
    println!(
        "With full renewable matching the operational side vanishes and the \
         embodied carbon of the {} servers dominates — the paper's Figure 5/9 story.",
        100
    );
    Ok(())
}
