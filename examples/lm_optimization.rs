//! The Figure 7 scenario: serving the universal language model (LM) and
//! walking the cross-stack optimization waterfall — caching, GPU
//! acceleration, low precision, operator fusion — from a CPU baseline to the
//! >800× optimized deployment.
//!
//! ```sh
//! cargo run --example lm_optimization
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sustainai::core::intensity::CarbonIntensity;
use sustainai::core::operational::OperationalAccount;
use sustainai::core::pue::Pue;
use sustainai::core::units::Energy;
use sustainai::optim::cache::{simulate_cache, CacheEnergyModel, CachePolicy};
use sustainai::optim::pass::Pipeline;
use sustainai::workload::inference::InferenceService;

fn main() -> Result<(), sustainai::core::Error> {
    // LM serving on the CPU baseline: 5B translations/day at 8 J each.
    let baseline = InferenceService::new("LM", 5.0e9, Energy::from_joules(8.0));
    let account = OperationalAccount::new(CarbonIntensity::US_AVERAGE_2021, Pue::new(1.1)?);

    println!("LM serving, CPU baseline:");
    println!("  daily energy: {}", baseline.daily_energy());
    println!(
        "  daily carbon: {}",
        account.location_based(baseline.daily_energy())
    );
    println!();

    // Walk the waterfall.
    let pipeline = Pipeline::lm_paper();
    println!("optimization waterfall:");
    let mut service = baseline.clone();
    for step in pipeline.waterfall(baseline.daily_energy()) {
        service = service.with_energy_scaled(1.0 / step.gain);
        println!(
            "  after {:<24} gain {:>5.1}x  cumulative {:>6.1}x  daily {}",
            step.name, step.gain, step.cumulative_gain, step.energy_after
        );
    }
    println!();
    println!(
        "optimized daily carbon: {} ({}x reduction)",
        account.location_based(service.daily_energy()),
        pipeline.total_gain().round()
    );
    println!();

    // Show where the caching gain comes from: zipfian request reuse.
    let sim = simulate_cache(
        &mut StdRng::seed_from_u64(7),
        CachePolicy::Lfu,
        5_000,
        100_000,
        1.2,
        200_000,
        CacheEnergyModel::paper_default(),
    );
    println!(
        "embedding-cache simulation: hit rate {}, derived gain {:.1}x (paper: 6.7x)",
        sim.hit_rate, sim.gain
    );
    Ok(())
}
