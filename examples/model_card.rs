//! The §V-A call-to-action, executed: measure a training job with the
//! tracker, then emit the carbon impact statement / model card the paper
//! says every published model should carry.
//!
//! ```sh
//! cargo run --example model_card
//! ```

use sustainai::core::embodied::{AllocationPolicy, EmbodiedModel};
use sustainai::core::intensity::{AccountingBasis, CarbonIntensity};
use sustainai::core::lifecycle::MlPhase;
use sustainai::core::metrics::{Leaderboard, MeasuredCandidate, Ranking};
use sustainai::core::modelcard::CarbonCard;
use sustainai::core::operational::OperationalAccount;
use sustainai::core::pue::Pue;
use sustainai::core::units::{Co2e, Power, TimeSpan};
use sustainai::telemetry::tracker::CarbonTracker;

fn main() -> Result<(), sustainai::core::Error> {
    // 1. Measure: a 64-GPU, 16-hour PAWS-style pre-training run.
    let account = OperationalAccount::new(CarbonIntensity::US_AVERAGE_2021, Pue::new(1.1)?);
    let tracker = CarbonTracker::new("paws-rn50", account)
        .with_embodied(EmbodiedModel::gpu_server()?, AllocationPolicy::UsageShare);
    let runtime = TimeSpan::from_hours(16.0);
    for gpu in 0..64 {
        tracker.record_power(
            &format!("v100-{gpu}"),
            MlPhase::OfflineTraining,
            Power::from_watts(250.0),
            runtime,
        );
    }
    tracker.record_machine_time(runtime * 8.0); // 8 servers × 16 h

    let report = tracker.report(AccountingBasis::LocationBased);

    // 2. Disclose: build the model card.
    let card = CarbonCard::builder("PAWS ResNet-50 (10% labels)")
        .hardware("8x (8x NVIDIA V100) servers", 8, runtime)
        .energy(report.energy)
        .accounting(
            CarbonIntensity::US_AVERAGE_2021,
            Pue::new(1.1)?,
            AccountingBasis::LocationBased,
        )
        .training(report.footprint)
        .note("energy from simulated NVML counters; embodied amortized usage-share")
        .note("semi-supervised pre-training, 200 epochs, 75.5% top-1")
        .build()?;
    println!("{card}");

    // 3. Compare: a sustainability-aware leaderboard (quality within budget).
    let mut board = Leaderboard::new();
    board.add(MeasuredCandidate::new(
        "paws-rn50",
        0.755,
        report.energy,
        report.footprint,
        0.0,
    )?);
    board.add(MeasuredCandidate::new(
        "simclr-rn50",
        0.693,
        report.energy * 5.0, // 1000 epochs vs 200
        report.footprint * 5.0,
        0.0,
    )?);
    let winner = board
        .winner(Ranking::QualityWithinBudget {
            budget: Co2e::from_tonnes(1.0),
        })
        .expect("at least one candidate within budget");
    println!(
        "leaderboard winner within a 1 tCO2e budget: {} ({:.1}% top-1, {})",
        winner.name,
        winner.quality * 100.0,
        winner.footprint.total()
    );
    Ok(())
}
