//! Quickstart: track the carbon footprint of one training job.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sustainai::core::embodied::{AllocationPolicy, EmbodiedModel};
use sustainai::core::equivalence::Equivalences;
use sustainai::core::intensity::{AccountingBasis, CarbonIntensity};
use sustainai::core::lifecycle::MlPhase;
use sustainai::core::operational::OperationalAccount;
use sustainai::core::pue::Pue;
use sustainai::core::units::{Power, TimeSpan};
use sustainai::telemetry::tracker::CarbonTracker;

fn main() -> Result<(), sustainai::core::Error> {
    // A hyperscale datacenter on the US grid with 100% renewable matching.
    let account = OperationalAccount::new(CarbonIntensity::US_AVERAGE_2021, Pue::new(1.1)?)
        .with_renewable_matching(sustainai::core::units::Fraction::new(1.0)?);

    // Track an 8-GPU, 3-day production training job.
    let tracker = CarbonTracker::new("rm1-weekly-retrain", account)
        .with_embodied(EmbodiedModel::gpu_server()?, AllocationPolicy::UsageShare);
    let run = TimeSpan::from_days(3.0);
    for gpu in 0..8 {
        tracker.record_power(
            &format!("gpu{gpu}"),
            MlPhase::OfflineTraining,
            Power::from_watts(300.0),
            run,
        );
    }
    tracker.record_machine_time(run);

    let location = tracker.report(AccountingBasis::LocationBased);
    let market = tracker.report(AccountingBasis::MarketBased);

    println!("{location}");
    println!();
    println!(
        "market-based operational (100% renewable matching): {}",
        market.footprint.operational()
    );
    println!(
        "embodied share under market basis: {}",
        market.footprint.embodied_share()
    );
    println!();
    println!(
        "location-based total {} {}",
        location.footprint.total(),
        Equivalences::of(location.footprint.total())
    );
    Ok(())
}
