//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so this shim keeps every
//! bench target compiling and *executing* (each benchmark body runs a small
//! fixed number of iterations and reports wall-clock time per iteration)
//! without any of criterion's statistics. It is a smoke-test harness: the
//! numbers are indicative, the execution is real.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a single named benchmark outside any group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Criterion {
        run_one(id.as_ref(), 10, f);
        self
    }
}

/// A named group of benchmarks (stand-in for `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API parity; drop does the same).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iterations: usize, mut f: F) {
    let mut bencher = Bencher {
        iterations: iterations.max(1),
        total_iters: 0,
        elapsed_nanos: 0,
    };
    f(&mut bencher);
    let per_iter = bencher
        .elapsed_nanos
        .checked_div(bencher.total_iters)
        .unwrap_or(0);
    println!(
        "  bench: {id}: {per_iter} ns/iter ({} iters)",
        bencher.total_iters
    );
}

/// Runs benchmark bodies (stand-in for `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    total_iters: u128,
    elapsed_nanos: u128,
}

impl Bencher {
    /// Times `routine` over a small fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed_nanos += start.elapsed().as_nanos();
        self.total_iters += self.iterations as u128;
    }
}

/// Declares a group of benchmark functions (stand-in for criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 5);
    }
}
