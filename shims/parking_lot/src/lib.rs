//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! Wraps [`std::sync::Mutex`]/[`std::sync::RwLock`] behind `parking_lot`'s
//! poison-free API (`lock()` returns the guard directly). Poisoned locks are
//! recovered by taking the inner value, matching `parking_lot`'s behaviour of
//! not propagating panics through lock acquisition.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free signatures.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
