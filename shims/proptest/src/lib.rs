//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the [`proptest!`] macro over a seeded deterministic generator:
//! each property runs for a fixed number of cases (default 64, override with
//! the `PROPTEST_CASES` environment variable), with inputs drawn from
//! [`Strategy`] implementations for numeric ranges, tuples, `any::<T>()`, and
//! [`collection::vec`]. `prop_assert!`/`prop_assert_eq!` panic on failure
//! like plain assertions; `prop_assume!` skips the current case.
//!
//! Unlike upstream proptest there is no shrinking — a failing case prints its
//! seed-deterministic inputs via the assertion message instead.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runtime support used by the [`proptest!`] expansion.
pub mod test_runner {
    use super::*;

    /// Number of cases per property (`PROPTEST_CASES` overrides).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Deterministic per-property generator: FNV-1a of the test name.
    pub fn rng_for(name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// Input-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A sampleable input domain.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut StdRng) -> f64 {
            self.start + (self.end - self.start) * rng.gen::<f64>()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut StdRng) -> f32 {
            self.start + (self.end - self.start) * rng.gen::<f32>()
        }
    }

    macro_rules! impl_int_range {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut StdRng) -> $ty {
                    let span = (self.end as i128) - (self.start as i128);
                    debug_assert!(span > 0, "empty integer range strategy");
                    let offset = (rng.gen::<u64>() as i128).rem_euclid(span);
                    (self.start as i128 + offset) as $ty
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// Strategy produced by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut StdRng) -> f64 {
            // Finite, sign-balanced, wide dynamic range.
            let magnitude = (rng.gen::<f64>() * 600.0) - 300.0;
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            sign * magnitude.exp2()
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;

        fn sample(&self, rng: &mut StdRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
    }

    /// Strategy for variable-length vectors (see [`crate::collection::vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.len.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// `any::<T>()` support (mirrors `proptest::arbitrary`).
pub mod arbitrary {
    use super::strategy::Any;

    /// The full-domain strategy for `T`.
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Everything a property test file needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module alias so `prop::collection::vec(...)` resolves as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            for __case in 0..$crate::test_runner::cases() {
                let _ = __case;
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                )*
                // Per-case closure so `prop_assume!` can skip via `return`.
                let mut __one_case = || $body;
                __one_case();
            }
        }
    )*};
}

/// Asserts a property-test condition (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 1.5f64..9.5, n in 3u64..17) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..17).contains(&n));
        }

        #[test]
        fn vectors_respect_length(v in prop::collection::vec(0.0f64..1.0, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn tuples_and_any(pair in (0u8..4, 0.0f64..2.0), flag in any::<bool>()) {
            prop_assert!(pair.0 < 4);
            prop_assert!(pair.1 < 2.0);
            prop_assume!(flag);
            prop_assert!(flag);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("t");
        let mut b = crate::test_runner::rng_for("t");
        for _ in 0..32 {
            assert_eq!((0.0f64..1.0).sample(&mut a), (0.0f64..1.0).sample(&mut b));
        }
    }
}
