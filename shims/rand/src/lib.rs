//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a deterministic, std-only reimplementation of exactly the surface
//! it consumes: [`Rng::gen`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, but with the identical contract the
//! simulators rely on: the same seed always yields the same sequence.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution of a generator
/// (uniform `[0, 1)` for floats, uniform over the whole domain for integers).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// User-facing generator extension trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }

    /// Draws a uniform value in `[0, n)`. Modulo bias is negligible for the
    /// small bounds the simulators use.
    fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "gen_index bound must be positive");
        (self.next_u64() % n as u64) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Slice helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index(i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_index(self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
