//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so serialization is
//! vendored as a small value-tree framework with the same spelling as real
//! serde at every call site the workspace has: `#[derive(Serialize,
//! Deserialize)]`, `serde::Serialize` / `serde::de::DeserializeOwned` bounds,
//! and `serde_json::{to_string, from_str}` (provided by the sibling
//! `serde_json` shim over [`Value`]).
//!
//! The JSON encoding mirrors upstream `serde_json` conventions — named
//! structs as objects, newtype structs transparent, unit enum variants as
//! strings, data-carrying variants as single-key objects, non-finite floats
//! as `null` — so persisted reports stay readable by standard tooling.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed/parseable JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral JSON number, kept exact.
    Int(i128),
    /// Non-integral (or non-finite) JSON number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered key/value list (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, accepting both number representations.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an exact integer.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i128),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Marker mirroring `serde::de::DeserializeOwned` (every shim type owns its data).
pub trait DeserializeOwned: Deserialize {}

impl<T: Deserialize> DeserializeOwned for T {}

/// Mirrors the `serde::de` module path used in trait bounds.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Mirrors the `serde::ser` module path.
pub mod ser {
    pub use super::Serialize;
}

// ---------------------------------------------------------------------------
// Derive-support helpers (referenced by serde_derive's generated code)
// ---------------------------------------------------------------------------

/// Decodes the field `name` of the object `v`; a missing key decodes as
/// `Null` so `Option` fields default to `None`.
///
/// # Errors
///
/// Returns [`Error`] when `v` is not an object or the field fails to decode.
pub fn decode_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(_) => T::from_value(v.get(name).unwrap_or(&Value::Null))
            .map_err(|e| Error(format!("field `{name}`: {e}"))),
        other => Err(Error(format!(
            "expected object with field `{name}`, found {other:?}"
        ))),
    }
}

/// Asserts that `v` is an array of exactly `len` items and returns it.
///
/// # Errors
///
/// Returns [`Error`] on a non-array or a length mismatch.
pub fn expect_array<'v>(v: &'v Value, what: &str, len: usize) -> Result<&'v [Value], Error> {
    match v {
        Value::Array(items) if items.len() == len => Ok(items),
        other => Err(Error(format!(
            "expected {len}-element array for {what}, found {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive and std-type impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<$ty, Error> {
                let i = v
                    .as_i128()
                    .ok_or_else(|| Error(format!("expected integer, found {v:?}")))?;
                <$ty>::try_from(i)
                    .map_err(|_| Error(format!("integer {i} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<$ty, Error> {
                v.as_f64()
                    .map(|f| f as $ty)
                    .ok_or_else(|| Error(format!("expected number, found {v:?}")))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length-checked char"))
            }
            other => Err(Error(format!(
                "expected single-char string, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected {N}-element array, found {len} elements")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = expect_array(v, "tuple", LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Renders a serialized map key, accepting string-like and integral keys
/// (mirroring `serde_json`'s stringified map keys).
fn key_to_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Int(i) => Ok(i.to_string()),
        other => Err(Error(format!("unsupported map key: {other:?}"))),
    }
}

/// Rebuilds a map key from its stringified form.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(i) = s.parse::<i128>() {
        return K::from_value(&Value::Int(i));
    }
    Err(Error(format!("cannot rebuild map key from `{s}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.to_value())
                        .expect("BTreeMap keys must serialize to strings or integers");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, found {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value())
                    .expect("HashMap keys must serialize to strings or integers");
                (key, v.to_value())
            })
            .collect();
        // Deterministic output regardless of hasher state.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<HashMap<K, V, S>, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, found {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(1.5f64).to_value(), Value::Float(1.5));
    }

    #[test]
    fn missing_field_decodes_option_as_none() {
        let obj = Value::Object(vec![]);
        let got: Option<f64> = decode_field(&obj, "absent").unwrap();
        assert_eq!(got, None);
        assert!(decode_field::<f64>(&obj, "absent").is_err());
    }

    #[test]
    fn array_and_tuple_round_trip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let tree = v.to_value();
        let back: Vec<(u64, f64)> = Vec::from_value(&tree).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn fixed_array_round_trip() {
        let a = [1.0f64, 2.0, 3.0];
        let back: [f64; 3] = Deserialize::from_value(&a.to_value()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn int_range_checked() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert_eq!(u8::from_value(&Value::Int(255)).unwrap(), 255);
    }
}
