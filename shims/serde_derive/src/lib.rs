//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! The build environment has no crates.io access, so this proc-macro is
//! written against `proc_macro` alone — no `syn`, no `quote`. It hand-parses
//! the derive input (structs with named/tuple/unit bodies, enums with unit,
//! tuple, and struct variants, simple generics) and emits implementations of
//! the shim's value-tree traits:
//!
//! * `serde::Serialize::to_value(&self) -> serde::Value`
//! * `serde::Deserialize::from_value(&serde::Value) -> Result<Self, serde::Error>`
//!
//! Encoding matches upstream `serde_json` conventions: named structs become
//! objects, newtype structs are transparent, tuple structs become arrays,
//! unit enum variants become strings, and data-carrying variants become
//! single-key objects.

#![deny(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field list.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Parsed derive input.
struct Input {
    name: String,
    /// Generic parameter declaration (e.g. `T, const N: usize`), bounds kept.
    generics_decl: Vec<GenericParam>,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct GenericParam {
    /// Parameter name (`T`, `N`, `'a`).
    name: String,
    /// Verbatim declaration tokens (`T: Copy`, `const N: usize`, `'a`).
    decl: String,
    /// True for type parameters (the only kind that receives trait bounds).
    is_type: bool,
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    let generics_decl = parse_generics(&tokens, &mut i);

    // Skip a `where` clause if present (up to the body group or `;`).
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => i += 1,
            }
        }
    }

    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_body(&tokens, i)),
        "enum" => Kind::Enum(parse_enum_body(&tokens, i)),
        other => panic!("cannot derive serde traits for `{other}` items"),
    };

    Input {
        name,
        generics_decl,
        kind,
    }
}

/// Advances past outer attributes (`#[...]`, including doc comments) and an
/// optional visibility qualifier (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `<...>` generics if present, returning the parameter list.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<GenericParam> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(tokens[*i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    if !current.is_empty() {
                        params.push(make_param(&current));
                    }
                    *i += 1;
                    return params;
                }
                current.push(tokens[*i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                if !current.is_empty() {
                    params.push(make_param(&current));
                }
                current.clear();
            }
            t => current.push(t.clone()),
        }
        *i += 1;
    }
    panic!("unbalanced generics in derive input");
}

fn make_param(tokens: &[TokenTree]) -> GenericParam {
    // Strip a trailing default (`= ...`) from the declaration.
    let mut decl_tokens: &[TokenTree] = tokens;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            if p.as_char() == '=' {
                decl_tokens = &tokens[..idx];
                break;
            }
        }
    }
    let decl = render(decl_tokens);
    match &decl_tokens[0] {
        TokenTree::Punct(p) if p.as_char() == '\'' => GenericParam {
            name: render(&decl_tokens[..2.min(decl_tokens.len())]),
            decl,
            is_type: false,
        },
        TokenTree::Ident(id) if id.to_string() == "const" => {
            let name = match &decl_tokens[1] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected const parameter name, found {other}"),
            };
            GenericParam {
                name,
                decl,
                is_type: false,
            }
        }
        TokenTree::Ident(id) => GenericParam {
            name: id.to_string(),
            decl,
            is_type: true,
        },
        other => panic!("unsupported generic parameter starting with {other}"),
    }
}

fn parse_struct_body(tokens: &[TokenTree], i: usize) -> Fields {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        None => Fields::Unit,
        other => panic!("unsupported struct body: {other:?}"),
    }
}

/// Field names of a `{ ... }` body, skipping attributes, visibility, and types.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        fields.push(name);
        i += 1;
        // Expect `:` then the type; consume until a top-level `,`.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of top-level comma-separated fields in a `( ... )` body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_enum_body(tokens: &[TokenTree], i: usize) -> Vec<(String, Fields)> {
    let group = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("expected enum body, found {other:?}"),
    };
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

fn render(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<decl> Trait for Name<args>` header pieces with `bound` added to every
/// type parameter.
fn impl_header(input: &Input, bound: &str) -> (String, String) {
    if input.generics_decl.is_empty() {
        return (String::new(), String::new());
    }
    let decl = input
        .generics_decl
        .iter()
        .map(|p| {
            if p.is_type {
                if p.decl.contains(':') {
                    format!("{} + {bound}", p.decl)
                } else {
                    format!("{}: {bound}", p.decl)
                }
            } else {
                p.decl.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(", ");
    let args = input
        .generics_decl
        .iter()
        .map(|p| p.name.clone())
        .collect::<Vec<_>>()
        .join(", ");
    (format!("<{decl}>"), format!("<{args}>"))
}

fn gen_serialize(input: &Input) -> String {
    let (decl, args) = impl_header(input, "::serde::Serialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(vec![{items}])")
        }
        Kind::Struct(Fields::Named(fields)) => {
            let pushes = fields
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push((String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!(
                "{{ let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n            \
                 {pushes}\n            ::serde::Value::Object(__obj) }}"
            )
        }
        Kind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("Self::{v} => ::serde::Value::Str(String::from(\"{v}\")),")
                    }
                    Fields::Tuple(n) => {
                        let binds = (0..*n)
                            .map(|k| format!("__f{k}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::Value::Array(vec![{items}])")
                        };
                        format!(
                            "Self::{v}({binds}) => ::serde::Value::Object(vec![\
                             (String::from(\"{v}\"), {payload})]),"
                        )
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let items = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "Self::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (String::from(\"{v}\"), \
                             ::serde::Value::Object(vec![{items}]))]),"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{decl} ::serde::Serialize for {name}{args} {{\n    \
         fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (decl, args) = impl_header(input, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => format!("Ok({name})"),
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{{ let __arr = ::serde::expect_array(__v, \"{name}\", {n})?;\n        \
                 Ok({name}({items})) }}"
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items = fields
                .iter()
                .map(|f| format!("{f}: ::serde::decode_field(__v, \"{f}\")?"))
                .collect::<Vec<_>>()
                .join(",\n            ");
            format!("Ok({name} {{\n            {items}\n        }})")
        }
        Kind::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => return Ok(Self::{v}),"))
                .collect::<Vec<_>>()
                .join("\n                ");
            let data_arms = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(n) => {
                        let expr = if *n == 1 {
                            format!("Self::{v}(::serde::Deserialize::from_value(__payload)?)")
                        } else {
                            let items = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{{ let __arr = ::serde::expect_array(\
                                 __payload, \"{name}::{v}\", {n})?; Self::{v}({items}) }}"
                            )
                        };
                        Some(format!("\"{v}\" => return Ok({expr}),"))
                    }
                    Fields::Named(fields) => {
                        let items = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::decode_field(__payload, \"{f}\")?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        Some(format!("\"{v}\" => return Ok(Self::{v} {{ {items} }}),"))
                    }
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            format!(
                "{{\n        if let ::serde::Value::Str(__s) = __v {{\n            \
                 match __s.as_str() {{\n                {unit_arms}\n                \
                 _ => {{}}\n            }}\n        }}\n        \
                 if let ::serde::Value::Object(__entries) = __v {{\n            \
                 if __entries.len() == 1 {{\n                \
                 let (__tag, __payload) = &__entries[0];\n                \
                 match __tag.as_str() {{\n                {data_arms}\n                \
                 _ => {{}}\n                }}\n            }}\n        }}\n        \
                 Err(::serde::Error::custom(format!(\
                 \"invalid {name} variant: {{:?}}\", __v)))\n    }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{decl} ::serde::Deserialize for {name}{args} {{\n    \
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{\n        {body}\n    }}\n}}"
    )
}
