//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`] over the vendored
//! serde shim's value tree.
//!
//! Number formatting follows upstream `serde_json`: integers print bare,
//! floats always carry a decimal point or exponent (`2.0`, not `2`) via
//! Rust's shortest-round-trip float formatter, and non-finite floats encode
//! as `null`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the shim's value tree; the `Result` keeps upstream's
/// signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a two-space-indented JSON string.
///
/// # Errors
///
/// Infallible for the shim's value tree; the `Result` keeps upstream's
/// signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Rebuilds a `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch with `T`.
pub fn from_value<T: serde::de::DeserializeOwned>(v: &Value) -> Result<T> {
    T::from_value(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Writes a float the way serde_json does: shortest round-trip representation
/// that still reads back as a float (`2.0`, not `2`); non-finite as `null`.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest-round-trip formatter: `2.0` keeps its
    // decimal point and huge/tiny magnitudes switch to scientific notation,
    // matching upstream serde_json's ryu output.
    let s = format!("{f:?}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing non-whitespace.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error::custom(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{word}`"))
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xD800..0xDC00).contains(&cp)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let low = self.hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                match char::from_u32(combined) {
                                    Some(c) => out.push(c),
                                    None => return self.err("invalid surrogate pair"),
                                }
                            } else {
                                match char::from_u32(cp) {
                                    Some(c) => out.push(c),
                                    None => return self.err("invalid \\u escape"),
                                }
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                b => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return self.err("invalid UTF-8"),
                        };
                        let end = start + len;
                        let Some(chunk) = self.bytes.get(start..end) else {
                            return self.err("truncated UTF-8");
                        };
                        match std::str::from_utf8(chunk) {
                            Ok(s) => out.push_str(s),
                            Err(_) => return self.err("invalid UTF-8"),
                        }
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let Some(chunk) = self.bytes.get(self.pos..self.pos + 4) else {
            return self.err("truncated \\u escape");
        };
        let Ok(s) = std::str::from_utf8(chunk) else {
            return self.err("invalid \\u escape");
        };
        match u32::from_str_radix(s, 16) {
            Ok(v) => {
                self.pos += 4;
                Ok(v)
            }
            Err(_) => self.err("invalid \\u escape"),
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Float(f)),
            Err(_) => self.err("invalid number"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&429.0f64).unwrap(), "429.0");
        assert_eq!(to_string(&5.5f64).unwrap(), "5.5");
        assert_eq!(to_string(&1e300f64).unwrap(), "1e300");
    }

    #[test]
    fn integers_print_bare() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a":[1,2.5,"x\n"],"b":{"nested":true},"c":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse(r#"{"k":[1,2],"s":"hi"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{").is_err());
        assert!(from_str::<f64>("\"no\"").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Value::Str("é".to_string()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".to_string()));
        assert_eq!(
            parse(r#""héllo""#).unwrap(),
            Value::Str("héllo".to_string())
        );
    }
}
