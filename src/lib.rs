//! # sustainai
//!
//! Umbrella crate for the `sustainai` workspace — a holistic carbon-footprint
//! accounting and simulation framework for machine-learning systems, built as
//! a full reproduction of *"Sustainable AI: Environmental Implications,
//! Challenges and Opportunities"* (Wu et al., MLSys 2022).
//!
//! Re-exports every workspace crate under a short module name:
//!
//! * [`core`] — units, carbon intensity, PUE, embodied LCA, footprint reports.
//! * [`telemetry`] — simulated power meters and job-level carbon tracking.
//! * [`stream`] — bounded-memory streaming telemetry ingestion: sharded
//!   backpressure queues, watermark reordering, retrying meter reads, and
//!   a validation harness scoring degradation against exact integration.
//! * [`workload`] — ML model descriptors, job distributions, scaling laws.
//! * [`des`] — the deterministic discrete-event engine: a timestamped
//!   event queue with stable seq tie-breaks, replay logging, and
//!   cancellation, driving the fleet simulation at event granularity.
//! * [`fleet`] — datacenter fleet simulation and carbon-aware scheduling.
//! * [`optim`] — the optimization-pass framework (caching, quantization, …).
//! * [`edge`] — federated-learning and on-device carbon simulation.
//! * [`obs`] — hierarchical spans, a metrics registry, and deterministic
//!   trace/metrics exporters across the simulators.
//! * [`par`] — deterministic parallel execution: ordered fan-out on scoped
//!   threads with per-task seed derivation and obs span adoption.
//! * [`prof`] — profiling analysis over obs recordings: span-tree
//!   reconstruction, self-time attribution, hotspot reports, critical
//!   paths, and collapsed-stack flamegraph export.
//! * [`cache`] — content-addressed incremental recomputation: FNV-1a
//!   fingerprints over canonical input encodings, with an in-memory and a
//!   corruption-tolerant on-disk store.
//!
//! ## Quickstart
//!
//! ```rust
//! use sustainai::core::operational::OperationalAccount;
//! use sustainai::core::intensity::CarbonIntensity;
//! use sustainai::core::pue::Pue;
//! use sustainai::core::units::Energy;
//!
//! # fn main() -> Result<(), sustainai::core::Error> {
//! let account = OperationalAccount::new(CarbonIntensity::US_AVERAGE_2021, Pue::new(1.1)?);
//! let co2 = account.location_based(Energy::from_megawatt_hours(100.0));
//! println!("{co2}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub use sustain_cache as cache;
pub use sustain_core as core;
pub use sustain_des as des;
pub use sustain_edge as edge;
pub use sustain_fleet as fleet;
pub use sustain_obs as obs;
pub use sustain_optim as optim;
pub use sustain_par as par;
pub use sustain_prof as prof;
pub use sustain_stream as stream;
pub use sustain_telemetry as telemetry;
pub use sustain_workload as workload;
