//! Differential correctness suite for `sustain-cache`: caching must be
//! *invisible* in the figure bytes.
//!
//! Three runs of the full figure fan-out — cold (every entry computed),
//! warm (every entry served), and poisoned (one stored entry corrupted on
//! disk between runs) — must be byte-identical on stdout, at 1 and 4
//! threads, and must match the checked-in `figures_output.txt` golden. A
//! poisoned entry degrades to a miss and is recomputed and repaired, never
//! a panic and never a wrong byte.

use std::path::{Path, PathBuf};

use sustainai::cache::Cache;
use sustainai::par::ParPool;

use sustain_bench::figs;

/// The exact bytes `all_figures` writes to stdout for the figure
/// catalogue, generated on `pool` through `cache`.
fn render(pool: &ParPool, cache: Option<&Cache>) -> String {
    figs::all_with_pool_cached(pool, cache)
        .iter()
        .map(|table| format!("{table}\n"))
        .collect()
}

fn golden() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/figures_output.txt"))
        .expect("figures_output.txt at the workspace root")
}

/// A per-test scratch directory under the system temp dir, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str) -> ScratchDir {
        let dir =
            std::env::temp_dir().join(format!("sustain-cache-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Every `figure-*.bin` entry file under `dir`, sorted for determinism.
fn figure_entries(dir: &Path) -> Vec<PathBuf> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir listable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("figure-") && name.ends_with(".bin")
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn cold_warm_and_poisoned_runs_are_byte_identical() {
    let scratch = ScratchDir::new("differential");
    let golden = golden();

    // Cold: nothing stored yet, every figure computed and persisted.
    let cold_cache = Cache::at_dir(scratch.path()).expect("open cache dir");
    let cold = render(&ParPool::new(1), Some(&cold_cache));
    assert_eq!(cold, golden, "cold cached run drifted from the golden");
    let figures = cold_cache.misses();
    assert!(figures > 0, "cold run must populate the cache");
    assert_eq!(cold_cache.hits(), 0, "a fresh directory cannot hit");

    // Warm: a fresh handle on the same directory serves every figure from
    // disk. 4 threads, so hits also cross the pool's task forks.
    let warm_cache = Cache::at_dir(scratch.path()).expect("open cache dir");
    let warm = render(&ParPool::new(4), Some(&warm_cache));
    assert_eq!(warm, cold, "warm bytes drifted from cold bytes");
    assert_eq!(
        (warm_cache.hits(), warm_cache.misses()),
        (figures, 0),
        "every figure of the warm run must be served from cache"
    );

    // Poison: flip one byte in the middle of one stored entry's payload.
    // The store's checksum must reject it — a miss, then recompute + repair.
    let entries = figure_entries(scratch.path());
    assert_eq!(entries.len() as u64, figures, "one entry file per figure");
    let victim = &entries[entries.len() / 2];
    let mut bytes = std::fs::read(victim).expect("read entry");
    let flip_at = bytes.len() / 2;
    bytes[flip_at] ^= 0x01;
    std::fs::write(victim, &bytes).expect("write poisoned entry");

    let poisoned_cache = Cache::at_dir(scratch.path()).expect("open cache dir");
    let poisoned = render(&ParPool::new(1), Some(&poisoned_cache));
    assert_eq!(poisoned, cold, "poisoned-entry run drifted from cold bytes");
    assert_eq!(
        (poisoned_cache.hits(), poisoned_cache.misses()),
        (figures - 1, 1),
        "exactly the poisoned entry must degrade to a miss"
    );

    // The recompute repaired the entry in place: a final fresh handle hits
    // everything again, at 4 threads.
    let repaired_cache = Cache::at_dir(scratch.path()).expect("open cache dir");
    let repaired = render(&ParPool::new(4), Some(&repaired_cache));
    assert_eq!(repaired, cold);
    assert_eq!(
        (repaired_cache.hits(), repaired_cache.misses()),
        (figures, 0)
    );
}

#[test]
fn in_memory_cache_is_invisible_across_thread_counts() {
    let uncached = render(&ParPool::new(1), None);
    let cache = Cache::in_memory();
    for threads in [1, 4] {
        let cold_or_warm = render(&ParPool::new(threads), Some(&cache));
        assert_eq!(
            cold_or_warm, uncached,
            "cached bytes drifted at {threads} threads"
        );
    }
    let figures = cache.misses();
    assert!(figures > 0);
    assert_eq!(
        cache.hits(),
        figures,
        "the second pass must be served entirely from memory"
    );
    assert_eq!(uncached, golden());
}

#[test]
fn unwritable_cache_directory_fails_open_not_late() {
    // A path that collides with an existing *file* cannot become a cache
    // directory; `Cache::at_dir` must surface that immediately instead of
    // degrading mid-run.
    let scratch = ScratchDir::new("unwritable");
    std::fs::create_dir_all(scratch.path()).expect("scratch dir");
    let file_path = scratch.path().join("occupied");
    std::fs::write(&file_path, b"not a directory").expect("placeholder file");
    assert!(Cache::at_dir(&file_path).is_err());
}
