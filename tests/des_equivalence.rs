//! Differential equivalence suite: the event-driven `FleetSim` (the
//! `sustain-des` engine behind `run`/`run_with_chaos`/the intensity
//! flavours) against `FleetSim::run_reference`, the retired hour-stepped
//! loop kept verbatim as the rollup adapter's executable specification.
//!
//! Every comparison is on the *serialized* `FleetSimReport` — byte
//! equality, not approximate — across seeds × chaos on/off × thread counts
//! {1, 4}, plus the intensity-series accounting paths. If any of these
//! fail, the DES adapter has drifted from the hourly model and
//! `figures_output.txt` is about to drift with it.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sustainai::core::intensity::GridRegion;
use sustainai::core::units::{Power, TimeSpan};
use sustainai::fleet::chaos::ChaosConfig;
use sustainai::fleet::cluster::Cluster;
use sustainai::fleet::datacenter::DataCenter;
use sustainai::fleet::scheduler::IntensitySeries;
use sustainai::fleet::sim::{FleetSim, FleetSimReport};
use sustainai::fleet::utilization::UtilizationModel;
use sustainai::par::ParPool;
use sustainai::workload::training::{JobClass, JobGenerator};

const SEEDS: [u64; 5] = [1, 7, 29, 0xDE5, 0xFEED_F00D];

fn sim(servers: u32, arrivals_per_day: f64, days: f64) -> FleetSim {
    FleetSim::new(
        Cluster::gpu_training(servers),
        DataCenter::hyperscale("dc", GridRegion::UsAverage, Power::from_megawatts(10.0)),
        JobGenerator::calibrated(JobClass::Research).expect("calibrated generator"),
        UtilizationModel::research_cluster(),
        arrivals_per_day,
        TimeSpan::from_days(days),
    )
}

fn bytes(report: &FleetSimReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// Asserts the DES report and the reference report serialize to the same
/// bytes, with a seed-labelled failure message.
fn assert_byte_identical(des: &FleetSimReport, reference: &FleetSimReport, label: &str) {
    assert_eq!(
        bytes(des),
        bytes(reference),
        "DES path diverged from hour-stepped reference ({label})"
    );
}

#[test]
fn des_matches_reference_across_seeds_without_chaos() {
    for seed in SEEDS {
        let des = sim(10, 12.0, 5.0).run(&mut StdRng::seed_from_u64(seed));
        let reference =
            sim(10, 12.0, 5.0).run_reference(&mut StdRng::seed_from_u64(seed), None, None);
        assert_byte_identical(&des, &reference, &format!("seed {seed}, no chaos"));
    }
}

#[test]
fn des_matches_reference_across_seeds_with_chaos() {
    let chaos = ChaosConfig::datacenter_default();
    for seed in SEEDS {
        let des = sim(10, 12.0, 5.0).run_with_chaos(&mut StdRng::seed_from_u64(seed), &chaos);
        let reference =
            sim(10, 12.0, 5.0).run_reference(&mut StdRng::seed_from_u64(seed), None, Some(&chaos));
        assert_byte_identical(&des, &reference, &format!("seed {seed}, chaos"));
    }
}

#[test]
fn des_matches_reference_with_zero_chaos() {
    // ChaosConfig::none() must be byte-for-byte the no-chaos run on both
    // the DES path and the reference path.
    let none = ChaosConfig::none();
    for seed in SEEDS {
        let des = sim(8, 10.0, 4.0).run_with_chaos(&mut StdRng::seed_from_u64(seed), &none);
        let reference =
            sim(8, 10.0, 4.0).run_reference(&mut StdRng::seed_from_u64(seed), None, None);
        assert_byte_identical(&des, &reference, &format!("seed {seed}, zero chaos"));
    }
}

#[test]
fn des_matches_reference_under_variable_intensity() {
    let series = IntensitySeries::solar_day(6);
    for seed in SEEDS {
        let des = sim(10, 12.0, 5.0).run_with_intensity(&mut StdRng::seed_from_u64(seed), &series);
        let reference =
            sim(10, 12.0, 5.0).run_reference(&mut StdRng::seed_from_u64(seed), Some(&series), None);
        assert_byte_identical(&des, &reference, &format!("seed {seed}, intensity"));
    }
}

#[test]
fn des_matches_reference_under_chaos_and_intensity_gaps() {
    use sustainai::core::units::Fraction;
    let series = IntensitySeries::solar_day(6);
    let chaos = ChaosConfig::datacenter_default().with_intensity_gap(Fraction::saturating(0.25));
    for seed in SEEDS {
        let des = sim(10, 12.0, 5.0).run_with_chaos_and_intensity(
            &mut StdRng::seed_from_u64(seed),
            &series,
            &chaos,
        );
        let reference = sim(10, 12.0, 5.0).run_reference(
            &mut StdRng::seed_from_u64(seed),
            Some(&series),
            Some(&chaos),
        );
        assert_byte_identical(&des, &reference, &format!("seed {seed}, chaos+intensity"));
    }
}

#[test]
fn des_replicas_match_reference_across_thread_counts() {
    // The DES path runs inside every replica task; the joined batch must be
    // byte-identical for 1 and 4 threads, and each replica must equal the
    // reference loop under its derived seed.
    let fleet = sim(10, 10.0, 5.0);
    let chaos = ChaosConfig::datacenter_default();
    for chaos_on in [false, true] {
        ParPool::set_threads(1);
        let serial = if chaos_on {
            fleet.run_replicas_with_chaos(6, 29, &chaos)
        } else {
            fleet.run_replicas(6, 29)
        };
        ParPool::set_threads(4);
        let parallel = if chaos_on {
            fleet.run_replicas_with_chaos(6, 29, &chaos)
        } else {
            fleet.run_replicas(6, 29)
        };
        ParPool::set_threads(0);
        assert_eq!(serial, parallel, "thread-count drift (chaos={chaos_on})");
        for (i, replica) in serial.iter().enumerate() {
            let seed = sustainai::par::task_seed(29, i as u64);
            let reference = fleet.run_reference(
                &mut StdRng::seed_from_u64(seed),
                None,
                chaos_on.then_some(&chaos),
            );
            assert_byte_identical(
                replica,
                &reference,
                &format!("replica {i}, chaos={chaos_on}"),
            );
        }
    }
}

#[test]
fn autoscale_ride_along_leaves_report_untouched() {
    use sustainai::fleet::autoscale::{AutoScaler, DiurnalLoad};
    for seed in SEEDS {
        let plain = sim(8, 10.0, 4.0).run(&mut StdRng::seed_from_u64(seed));
        let (scaled, outcome) = sim(8, 10.0, 4.0).run_with_autoscale(
            &mut StdRng::seed_from_u64(seed),
            &AutoScaler::paper_default(),
            &DiurnalLoad::web_tier(),
            1,
        );
        assert_byte_identical(
            &scaled,
            &plain,
            &format!("seed {seed}, autoscale ride-along"),
        );
        // 4 days at hourly cadence: one decision per simulated hour.
        assert_eq!(outcome.decisions, 96);
        assert!(outcome.opportunistic_gpu_hours > 0.0);
        assert!(outcome.mean_freed_share.value() > 0.0);
    }
}
