//! Cross-crate integration tests: telemetry → accounting → fleet → reports,
//! exercised through the umbrella `sustainai` API exactly as a downstream
//! user would.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sustainai::core::embodied::{AllocationPolicy, EmbodiedModel};
use sustainai::core::intensity::{AccountingBasis, CarbonIntensity, GridRegion};
use sustainai::core::lifecycle::MlPhase;
use sustainai::core::operational::OperationalAccount;
use sustainai::core::pue::Pue;
use sustainai::core::units::{Co2e, Energy, Fraction, Power, TimeSpan};
use sustainai::fleet::cluster::Cluster;
use sustainai::fleet::datacenter::DataCenter;
use sustainai::fleet::sim::FleetSim;
use sustainai::fleet::utilization::UtilizationModel;
use sustainai::telemetry::device::{DeviceSpec, PowerModel};
use sustainai::telemetry::meter::sample_profile;
use sustainai::telemetry::tracker::CarbonTracker;
use sustainai::workload::training::{JobClass, JobGenerator};

#[test]
fn trace_to_tracker_to_report_pipeline() {
    // Sample a GPU's power over a bursty utilization signal, feed the trace's
    // energy into a tracker, and confirm the report matches hand math.
    let model = DeviceSpec::A100.power_model();
    let trace = sample_profile(
        &model,
        |t| {
            if t.as_minutes() < 30.0 {
                Fraction::ONE
            } else {
                Fraction::ZERO
            }
        },
        TimeSpan::from_hours(1.0),
        TimeSpan::from_secs(10.0),
    );
    let account = OperationalAccount::new(
        CarbonIntensity::from_grams_per_kwh(400.0),
        Pue::new(1.1).unwrap(),
    );
    let tracker = CarbonTracker::new("trace-job", account);
    tracker.record_energy("gpu0", MlPhase::Experimentation, trace.energy());
    let report = tracker.report(AccountingBasis::LocationBased);

    // ~30 min at 400 W + ~30 min at 50 W ≈ 225 Wh.
    let wh = report.energy.as_watt_hours();
    assert!((wh - 225.0).abs() < 5.0, "energy {wh} Wh");
    let expected_g = wh / 1000.0 * 1.1 * 400.0;
    assert!((report.footprint.operational().as_grams() - expected_g).abs() < 1.0);
    assert!(report.is_phase_consistent(Co2e::from_grams(0.001)));
}

#[test]
fn fleet_sim_energy_is_bounded_by_power_envelope() {
    let servers = 20;
    let days = 10.0;
    let cluster = Cluster::gpu_training(servers);
    let sim = FleetSim::new(
        cluster.clone(),
        DataCenter::hyperscale("dc", GridRegion::UsAverage, Power::from_megawatts(5.0)),
        JobGenerator::calibrated(JobClass::Production).unwrap(),
        UtilizationModel::research_cluster(),
        30.0,
        TimeSpan::from_days(days),
    );
    let report = sim.run(&mut StdRng::seed_from_u64(77));
    // Energy can never exceed every server at peak for the whole horizon,
    // nor drop below every server idle.
    let peak = cluster.power_at(Fraction::ONE) * TimeSpan::from_days(days);
    let idle = cluster.power_at(Fraction::ZERO) * TimeSpan::from_days(days);
    assert!(report.it_energy <= peak);
    assert!(report.it_energy >= idle * 0.9);
}

#[test]
fn market_based_fleet_footprint_is_pure_embodied() {
    let sim = FleetSim::new(
        Cluster::gpu_training(10),
        DataCenter::hyperscale("dc", GridRegion::Nordic, Power::from_megawatts(2.0)),
        JobGenerator::calibrated(JobClass::Research).unwrap(),
        UtilizationModel::research_cluster(),
        10.0,
        TimeSpan::from_days(7.0),
    );
    let report = sim.run(&mut StdRng::seed_from_u64(78));
    let fp = report.footprint(AccountingBasis::MarketBased);
    assert!(fp.operational().is_zero());
    assert!(fp.embodied() > Co2e::ZERO);
    // Embodied matches a direct amortization of the cluster over the horizon.
    let expected = Co2e::from_kilograms(2000.0 * 10.0) * (7.0 / (4.0 * 365.25));
    assert!((fp.embodied().as_kilograms() - expected.as_kilograms()).abs() < 1.0);
}

#[test]
fn regional_placement_changes_location_based_only() {
    let run = |region: GridRegion| {
        let sim = FleetSim::new(
            Cluster::gpu_training(10),
            DataCenter::hyperscale("dc", region, Power::from_megawatts(2.0)),
            JobGenerator::calibrated(JobClass::Research).unwrap(),
            UtilizationModel::research_cluster(),
            20.0,
            TimeSpan::from_days(7.0),
        );
        sim.run(&mut StdRng::seed_from_u64(79))
    };
    let nordic = run(GridRegion::Nordic);
    let india = run(GridRegion::India);
    // Identical workload (same seed): same energy, very different carbon.
    assert_eq!(nordic.it_energy, india.it_energy);
    assert!(india.operational_location > nordic.operational_location * 5.0);
    assert_eq!(nordic.embodied, india.embodied);
}

#[test]
fn tracker_embodied_matches_core_amortization() {
    let account = OperationalAccount::new(CarbonIntensity::US_AVERAGE_2021, Pue::IDEAL);
    let embodied = EmbodiedModel::gpu_server().unwrap();
    let tracker =
        CarbonTracker::new("job", account).with_embodied(embodied, AllocationPolicy::UsageShare);
    let span = TimeSpan::from_days(10.0);
    tracker.record_machine_time(span);
    let direct = embodied
        .amortize(span, AllocationPolicy::UsageShare)
        .unwrap();
    assert_eq!(tracker.embodied_co2(), direct);
}

#[test]
fn workload_flops_bridge_is_consistent_with_device_power() {
    use sustainai::workload::flops::{training_flops, DeviceThroughput};
    let throughput = DeviceThroughput::for_spec(DeviceSpec::A100).unwrap();
    let mfu = Fraction::new(0.4).unwrap();
    let flops = training_flops(1_000_000_000, 10_000_000_000);
    let time = throughput.time_for(flops, mfu);
    let energy = throughput.energy_for(flops, mfu);
    // Energy equals the device's power at that MFU times the runtime.
    let power = DeviceSpec::A100.power_model().power(mfu);
    assert!((energy.as_joules() - (power * time).as_joules()).abs() < 1e-3);
}

#[test]
fn production_models_reported_through_tracker_match_registry() {
    use sustainai::workload::models::ProductionModel;
    // Feed each model's registry footprint through a FootprintReport and
    // confirm phase consistency end-to-end.
    for m in ProductionModel::ALL {
        let b = m.footprint_by_phase();
        let mut report = sustainai::core::footprint::FootprintReport::new(
            m.to_string(),
            AccountingBasis::LocationBased,
            Energy::ZERO,
            sustainai::core::footprint::CarbonFootprint::operational_only(m.total_co2()),
        );
        for (phase, co2) in b.iter() {
            report.record_phase(phase, co2);
        }
        assert!(report.is_phase_consistent(Co2e::from_grams(1.0)), "{m}");
    }
}
