//! Integration tests for the extension modules (§IV-C / §V / Appendix B):
//! geo placement, data pipeline, lifetime economics, multi-tenancy,
//! compression, client selection, metrics, and model cards — exercised
//! together the way a sustainability team would compose them.

use sustainai::core::footprint::CarbonFootprint;
use sustainai::core::intensity::{AccountingBasis, CarbonIntensity};
use sustainai::core::metrics::{Leaderboard, MeasuredCandidate, Ranking};
use sustainai::core::modelcard::CarbonCard;
use sustainai::core::pue::Pue;
use sustainai::core::units::{Co2e, DataVolume, Energy, Fraction, Power, TimeSpan};

#[test]
fn geo_and_temporal_shifting_compose() {
    // The two §IV-C axes: shifting in time (scheduler) and in space (geo).
    // Both beat the naive baseline; spatial shifting helps even with zero
    // slack, temporal shifting helps even with one region.
    use sustainai::fleet::geo::{follow_the_sun_fleet, place, GeoJob, GeoPolicy};
    use sustainai::fleet::scheduler::{schedule, IntensitySeries, Policy, ScheduledJob};

    let jobs_geo: Vec<GeoJob> = (0..12)
        .map(|i| GeoJob {
            id: i,
            arrival_hour: (i as usize * 4) % 48,
            duration_hours: 2,
            energy: Energy::from_kilowatt_hours(100.0),
        })
        .collect();
    let regions = follow_the_sun_fleet(3, 64);
    let spatial = place(&jobs_geo, &regions, GeoPolicy::FollowTheSun);
    let naive = place(&jobs_geo, &regions, GeoPolicy::HomeRegion);
    assert!(spatial.total_co2() < naive.total_co2());

    let jobs_time: Vec<ScheduledJob> = (0..12)
        .map(|i| {
            ScheduledJob::new(
                i,
                (i as usize * 4) % 48,
                2,
                Energy::from_kilowatt_hours(100.0),
            )
        })
        .collect();
    let series = IntensitySeries::solar_day(3);
    let temporal = schedule(
        &jobs_time,
        &series,
        Policy::CarbonAware {
            max_delay_hours: 12,
        },
        None,
    );
    let immediate = schedule(&jobs_time, &series, Policy::Immediate, None);
    assert!(temporal.total_co2() < immediate.total_co2());
}

#[test]
fn data_pipeline_feeds_fig3_share() {
    use sustainai::workload::datapipeline::DataPipeline;
    use sustainai::workload::phases::PipelineEnergySplit;

    let pipeline = DataPipeline::rm1_scale();
    let split = PipelineEnergySplit::rm1();
    // Back out the other stages from the published split and check the
    // bottom-up data stage reproduces its own share.
    let data_power = pipeline.total_power();
    let training = data_power * (split.experimentation_training().value() / split.data().value());
    let inference = data_power * (split.inference().value() / split.data().value());
    let share = pipeline.share_of_pipeline(training, inference);
    assert!((share.value() - split.data().value()).abs() < 0.01);
}

#[test]
fn pipeline_growth_outpaces_efficiency_cycle() {
    // Jevons at the data layer: Fig 2b growth (2.4x data / 3.2x bandwidth
    // per 2y) overwhelms the 20%/6mo efficiency cadence applied to the
    // pipeline (0.41x over 2y): net demand still rises.
    use sustainai::optim::stack::OptimizationCycle;
    use sustainai::workload::datapipeline::DataPipeline;

    let base = DataPipeline::rm1_scale();
    let grown = base.grown(2.4, 3.2);
    let efficiency = OptimizationCycle::paper_default()
        .retained()
        .value()
        .powi(4);
    let net = grown.total_power().as_watts() * efficiency / base.total_power().as_watts();
    assert!(
        net > 1.0,
        "net pipeline power factor {net} should still grow"
    );
}

#[test]
fn lifetime_extension_interacts_with_embodied_rate() {
    use sustainai::core::embodied::{AllocationPolicy, EmbodiedModel};
    use sustainai::fleet::lifetime::{optimal_lifetime, LifetimeTradeoff};

    let grid: Vec<f64> = (1..=10).map(|y| y as f64).collect();
    let best = optimal_lifetime(&LifetimeTradeoff::gpu_server(), &grid);
    // Using the optimal life in the core embodied model lowers the per-job
    // embodied rate versus the 4-year default.
    let default = EmbodiedModel::gpu_server().unwrap();
    let extended = default.with_lifetime(best.lifetime).unwrap();
    if best.lifetime > default.lifetime() {
        assert!(
            extended.rate(AllocationPolicy::TimeShare) < default.rate(AllocationPolicy::TimeShare)
        );
    }
}

#[test]
fn multitenancy_and_utilization_tell_the_same_story() {
    // Packing four quarter-GPU tenants onto one device is a 4x utilization
    // improvement; Figure 9's sweep must agree on the embodied saving factor.
    use sustainai::core::embodied::{AllocationPolicy, EmbodiedModel};
    use sustainai::optim::multitenancy::{evaluate, Tenant};

    let tenants: Vec<Tenant> = (0..4)
        .map(|_| Tenant::new(Fraction::saturating(0.25), 12.0))
        .collect();
    let report = evaluate(
        &tenants,
        Power::from_watts(300.0),
        Fraction::saturating(0.05),
    );
    assert_eq!(report.dedicated_devices, 4);
    assert_eq!(report.shared_devices, 1);

    let embodied = EmbodiedModel::gpu_server().unwrap();
    let low = embodied
        .with_expected_utilization(Fraction::saturating(0.25))
        .unwrap();
    let high = embodied
        .with_expected_utilization(Fraction::saturating(1.0))
        .unwrap();
    let day = TimeSpan::from_days(1.0);
    let ratio = low.amortize(day, AllocationPolicy::UsageShare).unwrap()
        / high.amortize(day, AllocationPolicy::UsageShare).unwrap();
    assert!((ratio - 4.0).abs() < 1e-9, "usage-share agrees: {ratio}");
}

#[test]
fn compression_report_feeds_leaderboard() {
    use sustainai::optim::compression::{apply, CompressionTechnique};
    use sustainai::workload::recsys::DlrmConfig;

    let rm = DlrmConfig::production_scale();
    let memory = DataVolume::from_gigabytes(80.0);
    let mut board = Leaderboard::new();
    for (name, technique, quality) in [
        ("uncompressed", CompressionTechnique::None, 0.8010),
        ("tt-rec", CompressionTechnique::tt_rec_paper(), 0.8005),
        ("dhe", CompressionTechnique::dhe_paper(), 0.7990),
    ] {
        let r = apply(&rm, technique, memory);
        // Stylized: embodied ∝ systems, operational ∝ training time.
        let footprint = CarbonFootprint::new(
            Co2e::from_tonnes(100.0 * r.relative_operational()),
            Co2e::from_tonnes(50.0 * r.relative_embodied()),
        );
        board.add(
            MeasuredCandidate::new(
                name,
                quality,
                Energy::from_megawatt_hours(10.0),
                footprint,
                1e9,
            )
            .unwrap(),
        );
    }
    // Quality-only crowns the uncompressed model; a carbon budget flips it.
    assert_eq!(
        board.winner(Ranking::QualityOnly).unwrap().name,
        "uncompressed"
    );
    let winner = board
        .winner(Ranking::QualityWithinBudget {
            budget: Co2e::from_tonnes(130.0),
        })
        .unwrap();
    assert_eq!(winner.name, "tt-rec");
}

#[test]
fn fl_selection_feeds_edge_estimator() {
    // Energy-aware selection's savings survive the full carbon conversion.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sustainai::edge::selection::{simulate_selection, SelectionPolicy};

    let run = |policy| {
        simulate_selection(
            &mut StdRng::seed_from_u64(42),
            policy,
            30,
            150,
            30,
            DataVolume::from_bytes(20e6),
            TimeSpan::from_minutes(4.0),
        )
    };
    let random = run(SelectionPolicy::Random);
    let aware = run(SelectionPolicy::EnergyAware);
    let intensity = CarbonIntensity::WORLD_AVERAGE_2021;
    let random_co2 = intensity.emissions(random.total_energy);
    let aware_co2 = intensity.emissions(aware.total_energy);
    assert!(aware_co2 < random_co2);
}

#[test]
fn model_card_round_trips_through_json_with_metrics() {
    let card = CarbonCard::builder("RM2")
        .hardware("128x GPU training servers", 128, TimeSpan::from_days(5.0))
        .energy(Energy::from_megawatt_hours(180.0))
        .accounting(
            CarbonIntensity::US_AVERAGE_2021,
            Pue::new(1.1).unwrap(),
            AccountingBasis::LocationBased,
        )
        .training(CarbonFootprint::new(
            Co2e::from_tonnes(85.0),
            Co2e::from_tonnes(42.0),
        ))
        .build()
        .unwrap();
    let json = serde_json::to_string(&card).unwrap();
    let back: CarbonCard = serde_json::from_str(&json).unwrap();
    assert_eq!(back, card);
    assert!(back.to_markdown().contains("128"));
    // The card's totals feed a leaderboard candidate directly.
    let candidate = MeasuredCandidate::new(
        back.model_name(),
        0.81,
        back.energy(),
        back.training(),
        2.0e12,
    )
    .unwrap();
    assert!(candidate.carbon_per_kilo_prediction().unwrap() > Co2e::ZERO);
}

#[test]
fn estimator_error_propagates_to_carbon_error() {
    // §V-A: methodology perturbs the measure — quantify it in CO2 terms.
    use sustainai::telemetry::device::DeviceSpec;
    use sustainai::telemetry::estimation::{validate_estimator, EstimationMethod};

    let device = DeviceSpec::V100.power_model();
    let err = validate_estimator(
        &device,
        Power::from_watts(300.0),
        EstimationMethod::TdpTimesUtilization,
        |_| Fraction::saturating(0.3),
        TimeSpan::from_days(1.0),
        TimeSpan::from_minutes(5.0),
    );
    let intensity = CarbonIntensity::US_AVERAGE_2021;
    let true_co2 = intensity.emissions(err.metered);
    let est_co2 = intensity.emissions(err.estimated);
    // The CO2 relative error equals the energy relative error.
    let co2_err = est_co2 / true_co2 - 1.0;
    assert!((co2_err - err.relative_error()).abs() < 1e-9);
    assert!(co2_err < -0.1, "underestimate propagates, got {co2_err}");
}
