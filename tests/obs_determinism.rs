//! Observability determinism suite: under a fixed seed and the simulated
//! clock, instrumenting a full simulation twice yields byte-identical
//! exports — and leaving the default (disabled) handle in place leaves
//! simulation results untouched.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sustainai::core::intensity::GridRegion;
use sustainai::core::units::{Power, TimeSpan};
use sustainai::edge::fl::FlApp;
use sustainai::fleet::chaos::ChaosConfig;
use sustainai::fleet::cluster::Cluster;
use sustainai::fleet::datacenter::DataCenter;
use sustainai::fleet::sim::FleetSim;
use sustainai::fleet::utilization::UtilizationModel;
use sustainai::obs::{Obs, ObsConfig};
use sustainai::workload::training::{JobClass, JobGenerator};

const SEED: u64 = 0x0B5_DE7;

fn sim() -> FleetSim {
    FleetSim::new(
        Cluster::gpu_training(8),
        DataCenter::hyperscale("dc", GridRegion::UsAverage, Power::from_megawatts(5.0)),
        JobGenerator::calibrated(JobClass::Research).expect("calibrated generator"),
        UtilizationModel::research_cluster(),
        8.0,
        TimeSpan::from_days(7.0),
    )
}

/// One instrumented end-to-end run: chaos fleet simulation (fault injection
/// and gap imputation included) followed by an FL simulation, all reporting
/// into a fresh sim-clocked recording.
fn instrumented_run() -> Obs {
    let obs = ObsConfig::enabled().build();
    let report = sim().with_obs(&obs).run_with_chaos(
        &mut StdRng::seed_from_u64(SEED),
        &ChaosConfig::datacenter_default(),
    );
    assert!(report.it_energy.as_joules() > 0.0);
    let log = FlApp::fl1().simulate_with_obs(&mut StdRng::seed_from_u64(SEED), &obs);
    assert!(!log.is_empty());
    obs
}

#[test]
fn exports_are_byte_identical_across_identical_runs() {
    let a = instrumented_run();
    let b = instrumented_run();
    assert!(a.event_count() > 0, "instrumented run must record events");
    assert_eq!(a.export_jsonl(), b.export_jsonl());
    assert_eq!(a.export_chrome_trace(), b.export_chrome_trace());
    assert_eq!(a.export_prometheus(), b.export_prometheus());
}

#[test]
fn instrumentation_does_not_perturb_results() {
    // The same seeded simulation must produce identical reports whether it
    // records into an enabled handle or the default disabled one.
    let obs = ObsConfig::enabled().build();
    let with = sim().with_obs(&obs).run_with_chaos(
        &mut StdRng::seed_from_u64(SEED),
        &ChaosConfig::datacenter_default(),
    );
    let without = sim().run_with_chaos(
        &mut StdRng::seed_from_u64(SEED),
        &ChaosConfig::datacenter_default(),
    );
    assert_eq!(format!("{with:?}"), format!("{without:?}"));

    let traced = FlApp::fl2().simulate_with_obs(&mut StdRng::seed_from_u64(SEED), &obs);
    let plain = FlApp::fl2().simulate(&mut StdRng::seed_from_u64(SEED));
    assert_eq!(traced, plain);
}

#[test]
fn disabled_handle_records_nothing() {
    let report = sim().run_with_chaos(
        &mut StdRng::seed_from_u64(SEED),
        &ChaosConfig::datacenter_default(),
    );
    assert!(report.it_energy.as_joules() > 0.0);
    let obs = sustainai::obs::handle();
    assert!(!obs.enabled());
    assert_eq!(obs.event_count(), 0);
    assert_eq!(obs.registry().len(), 0);
}

#[test]
fn sim_clock_timestamps_span_the_simulated_horizon() {
    let obs = instrumented_run();
    let jsonl = obs.export_jsonl();
    // The fleet run span covers the whole 7-day horizon in *simulated*
    // seconds — proof the exports are on the sim clock, not the wall clock.
    let run_line = jsonl
        .lines()
        .find(|l| l.contains("\"fleet_sim.run\""))
        .expect("fleet_sim.run span in JSONL");
    let horizon_secs = TimeSpan::from_days(7.0).as_secs();
    assert!(
        run_line.contains(&format!("\"end_s\":{horizon_secs}")),
        "span must end at the simulated horizon: {run_line}"
    );
}
