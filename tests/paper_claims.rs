//! The paper's headline quantitative claims, asserted end-to-end through the
//! public API. Each test names the figure/section it validates; `EXPERIMENTS.md`
//! records the same comparisons in prose.

use sustainai::core::units::{Fraction, TimeSpan};

#[test]
fn fig2_growth_constants() {
    use sustainai::workload::datagrowth::GrowthTrend;
    let two = TimeSpan::from_years(2.0);
    assert!((GrowthTrend::recsys_data_primary().factor_over(two) - 2.4).abs() < 1e-9);
    assert!((GrowthTrend::ingestion_bandwidth().factor_over(two) - 3.2).abs() < 1e-9);
    assert!((GrowthTrend::rm_model_size().factor_over(two) - 20.0).abs() < 1e-9);
}

#[test]
fn fig3_capacity_and_pipeline_splits() {
    use sustainai::workload::phases::{PhaseCapacitySplit, PipelineEnergySplit};
    let cap = PhaseCapacitySplit::paper_default();
    assert_eq!(
        (
            cap.experimentation().as_percent().round() as u32,
            cap.training().as_percent().round() as u32,
            cap.inference().as_percent().round() as u32
        ),
        (10, 20, 70)
    );
    let pipe = PipelineEnergySplit::rm1();
    assert_eq!(
        (
            pipe.data().as_percent().round() as u32,
            pipe.experimentation_training().as_percent().round() as u32,
            pipe.inference().as_percent().round() as u32
        ),
        (31, 29, 40)
    );
}

#[test]
fn fig4_fleet_average_vs_oss_models() {
    use sustainai::workload::models::{fleet_average_training_co2, OssModel};
    let avg = fleet_average_training_co2();
    assert!((avg / OssModel::Meena.training_co2() - 1.8).abs() < 0.1);
    assert!((avg / OssModel::Gpt3.training_co2() - 0.3).abs() < 0.05);
}

#[test]
fn fig5_embodied_split() {
    use sustainai::workload::models::ProductionModel;
    for m in ProductionModel::ALL {
        let fp = m.overall_footprint();
        // "roughly 30% / 70%" embodied/operational.
        assert!((fp.embodied_share().value() - 0.333).abs() < 0.01);
        assert!(m.overall_footprint_cfe().embodied_share().value() > 0.5);
    }
}

#[test]
fn fig6_twenty_percent_per_half_year() {
    use sustainai::optim::stack::OptimizationCycle;
    let r = OptimizationCycle::paper_default().total_reduction().value();
    assert!((r - 0.20).abs() < 0.01);
}

#[test]
fn fig7_waterfall_exceeds_800x() {
    use sustainai::optim::pass::Pipeline;
    let gain = Pipeline::lm_paper().total_gain();
    assert!(gain > 800.0 && gain < 830.0);
}

#[test]
fn fig8_net_28_5_percent_over_two_years() {
    use sustainai::fleet::jevons::JevonsModel;
    let net = JevonsModel::paper_default().net_power_factor(TimeSpan::from_years(2.0));
    assert!((1.0 - net - 0.285).abs() < 1e-6);
}

#[test]
fn fig9_utilization_sweep_shape() {
    let sweep = sustain_bench_fig9_sweep();
    let low = sweep.at(Fraction::saturating(0.3));
    let high = sweep.at(Fraction::saturating(0.8));
    let ratio = low.grid.total() / high.grid.total();
    assert!(ratio > 2.0 && ratio < 3.5, "30->80% ratio {ratio}");
    assert!(high.carbon_free.embodied_share().value() > 0.5);
}

fn sustain_bench_fig9_sweep() -> sustainai::fleet::utilization::UtilizationSweep {
    use sustainai::core::embodied::EmbodiedModel;
    use sustainai::core::intensity::CarbonIntensity;
    use sustainai::core::operational::OperationalAccount;
    use sustainai::core::pue::Pue;
    use sustainai::telemetry::device::DeviceSpec;
    sustainai::fleet::utilization::UtilizationSweep::new(
        DeviceSpec::V100.power_model(),
        TimeSpan::from_days(300.0),
        OperationalAccount::new(CarbonIntensity::US_AVERAGE_2021, Pue::new(1.1).unwrap()),
        EmbodiedModel::gpu_server().unwrap(),
    )
}

#[test]
fn fig10_utilization_band() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sustainai::fleet::utilization::UtilizationModel;
    let h = UtilizationModel::research_cluster().histogram(&mut StdRng::seed_from_u64(1), 40_000);
    assert!(h.mass_between(0.3, 0.5) > 0.55);
}

#[test]
fn fig11_fl_comparable_to_transformer_big() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sustainai::core::units::DataVolume;
    use sustainai::edge::carbon::{CentralizedBaseline, EdgeCarbonEstimator};
    use sustainai::edge::fl::FlApp;
    let scale = 20.0;
    let app = FlApp::new(
        "FL-1",
        100,
        500,
        DataVolume::from_bytes(20e6),
        TimeSpan::from_minutes(4.0),
    );
    let log = app.simulate(&mut StdRng::seed_from_u64(90));
    let co2 = EdgeCarbonEstimator::paper_default().estimate(&log).co2 * scale;
    let ratio = co2 / CentralizedBaseline::P100Base.co2();
    assert!(ratio > 0.3 && ratio < 5.0, "ratio {ratio}");
}

#[test]
fn fig12_star_economics() {
    use sustainai::workload::scaling::RecsysScalingLaw;
    let law = RecsysScalingLaw::paper_default();
    let y = law.point(2.0, 2.0);
    let g = law.point(8.0, 16.0);
    assert!((g.energy_per_step / y.energy_per_step - 4.0).abs() < 0.05);
    assert!((y.normalized_entropy - g.normalized_entropy - 0.004).abs() < 0.0005);
}

#[test]
fn section3b_quantization_anchors() {
    use sustainai::optim::quantization::{quantize_hottest, rm2_like, NumericFormat};
    let mut rm2 = rm2_like();
    let report = quantize_hottest(&mut rm2, NumericFormat::Fp16, Fraction::saturating(0.41));
    assert!((report.size_reduction().value() - 0.15).abs() < 0.03);
    assert!((report.bandwidth_reduction().value() - 0.207).abs() < 0.03);
}

#[test]
fn section4a_sampling_anchor() {
    use sustainai::optim::sampling::ProxyEvaluation;
    let cfg = ProxyEvaluation::paper_default();
    assert!((cfg.speedup(Fraction::saturating(0.1)) - 5.8).abs() < 1e-9);
}

#[test]
fn section4b_grid_nas_overhead() {
    use sustainai::optim::nas::SearchStrategy;
    assert!(SearchStrategy::Grid.overhead(3000) >= 3000.0);
}

#[test]
fn appendix_c_ssl_effort_gap() {
    use sustainai::workload::ssl::TrainingRegime;
    let ratio = TrainingRegime::simclr().effort_ratio_vs(&TrainingRegime::supervised_resnet50());
    assert!(ratio > 10.0 && ratio < 12.0);
}

#[test]
fn meena_vehicle_miles_equivalence() {
    use sustainai::core::equivalence::Equivalences;
    use sustainai::workload::models::OssModel;
    let eq = Equivalences::of(OssModel::Meena.training_co2());
    assert!((eq.vehicle_miles - 242_231.0).abs() / 242_231.0 < 0.05);
}
