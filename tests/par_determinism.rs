//! Parallel-execution determinism suite: the `sustain-par` contract says
//! thread count is a pure wall-time knob — figure bytes, Monte Carlo
//! replica reports, and (worker-attribute aside) observability exports are
//! identical at `--threads 1`, `--threads 4`, and the machine default.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sustain_bench::figs;
use sustainai::core::intensity::GridRegion;
use sustainai::core::units::{Power, TimeSpan};
use sustainai::fleet::cluster::Cluster;
use sustainai::fleet::datacenter::DataCenter;
use sustainai::fleet::sim::{FleetSim, ReplicaSummary};
use sustainai::fleet::utilization::UtilizationModel;
use sustainai::obs::ObsConfig;
use sustainai::par::{task_seed, ParPool};
use sustainai::workload::training::{JobClass, JobGenerator};

const SEED_A: u64 = 0xC0F_FEE;
const SEED_B: u64 = 41;

/// The exact bytes `all_figures` writes to stdout, generated on `pool`.
fn render(pool: &ParPool) -> String {
    figs::all_with_pool(pool)
        .iter()
        .map(|table| format!("{table}\n"))
        .collect()
}

fn sim() -> FleetSim {
    FleetSim::new(
        Cluster::gpu_training(8),
        DataCenter::hyperscale("dc", GridRegion::UsAverage, Power::from_megawatts(5.0)),
        JobGenerator::calibrated(JobClass::Research).expect("calibrated generator"),
        UtilizationModel::research_cluster(),
        8.0,
        TimeSpan::from_days(7.0),
    )
}

/// Masks the one sanctioned scheduling artifact — the `worker` attribute on
/// `par.task` events — so JSONL exports can be compared across thread
/// counts byte-for-byte.
fn mask_workers(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    let mut rest = jsonl;
    while let Some(at) = rest.find("\"worker\":") {
        let value_start = at + "\"worker\":".len();
        out.push_str(&rest[..value_start]);
        out.push('0');
        rest = rest[value_start..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn figure_fan_out_is_byte_identical_across_thread_counts() {
    let serial = render(&ParPool::new(1));
    assert!(!serial.is_empty());
    for threads in [2, 4] {
        assert_eq!(
            serial,
            render(&ParPool::new(threads)),
            "figure bytes drifted at {threads} threads"
        );
    }
    // The machine default (whatever `available_parallelism` reports here)
    // must also reproduce the checked-in golden output.
    assert_eq!(serial, render(&ParPool::current()));
    let golden =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/figures_output.txt"))
            .expect("figures_output.txt at the workspace root");
    assert_eq!(
        serial, golden,
        "fan-out output drifted from figures_output.txt"
    );
}

/// The global knobs (`ParPool::set_threads`, the installed obs handle) live
/// in one test so parallel test threads never race on them.
#[test]
fn thread_count_never_leaks_into_recordings_or_replicas() {
    // (a) Observability: fork/adopt keeps the merged event log identical
    // across thread counts once the `worker` attribute is masked, and the
    // figure counter lands in the parent registry exactly once per table.
    let record = |threads: usize| {
        let obs = ObsConfig::enabled().build();
        let tables =
            sustainai::obs::with_task_handle(&obs, || figs::all_with_pool(&ParPool::new(threads)));
        assert!(!tables.is_empty());
        (
            mask_workers(&obs.export_jsonl()),
            obs.counter("figures_generated_total").value(),
        )
    };
    let (serial_log, serial_count) = record(1);
    let (parallel_log, parallel_count) = record(4);
    assert!(serial_count > 0.0, "traced figures must bump the counter");
    assert_eq!(serial_count, parallel_count);
    assert_eq!(
        serial_log, parallel_log,
        "worker-masked JSONL must not depend on thread count"
    );

    // (b) Monte Carlo replicas: `--threads` (via the process-wide override)
    // never changes replica reports, per-replica seeds, or the reduction.
    let fleet = sim();
    for base_seed in [SEED_A, SEED_B] {
        ParPool::set_threads(1);
        let serial = fleet.run_replicas(5, base_seed);
        ParPool::set_threads(4);
        let parallel = fleet.run_replicas(5, base_seed);
        ParPool::set_threads(0);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));

        // Any single replica is reproducible in isolation from its derived
        // seed — scheduling cannot have touched the RNG streams.
        let direct = fleet.run(&mut StdRng::seed_from_u64(task_seed(base_seed, 3)));
        assert_eq!(format!("{:?}", serial[3]), format!("{direct:?}"));

        let reduced = ReplicaSummary::from_reports(&serial).expect("non-empty batch");
        let reduced_parallel = ReplicaSummary::from_reports(&parallel).expect("non-empty batch");
        assert_eq!(format!("{reduced:?}"), format!("{reduced_parallel:?}"));
        assert_eq!(reduced.replicas, 5);
    }
}

#[test]
fn pool_joins_in_submission_order_and_surfaces_the_lowest_panic() {
    // Submission-order join even when completion order differs.
    let pool = ParPool::new(4);
    let out = pool.map_indexed((0..48usize).collect(), |index, value| {
        assert_eq!(index, value);
        let mut acc = value as u64;
        for _ in 0..(48 - index) * 500 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        (index, acc % 2 < 2)
    });
    assert_eq!(out.len(), 48);
    assert!(out.iter().enumerate().all(|(i, (index, _))| *index == i));

    // Panic propagation carries the lowest panicking task index.
    let caught = std::panic::catch_unwind(|| {
        ParPool::new(3).map_indexed((0..16usize).collect(), |index, value| {
            assert!(index < 9, "boom at {index}");
            value
        })
    })
    .expect_err("batch must fail");
    let message = caught.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(message.contains("task 9"), "got {message:?}");

    // Edge cases: empty input, zero threads.
    let empty: Vec<usize> = ParPool::new(4).map_indexed(Vec::new(), |_, v| v);
    assert!(empty.is_empty());
    assert_eq!(ParPool::new(0).threads(), 1);
    let seeded = ParPool::new(0).map_seeded(4, SEED_B, |_, seed| seed);
    assert_eq!(
        seeded,
        (0..4).map(|i| task_seed(SEED_B, i)).collect::<Vec<_>>()
    );
}
