//! Profiling determinism suite: the work-counter profile of the full
//! figure catalogue is byte-identical at any thread count, and the
//! wall-clock profile attributes the fig07 hot path to a named inner span
//! instead of leaving it as unexplained self time.

use sustainai::obs::{Obs, ObsConfig};
use sustainai::par::ParPool;
use sustainai::prof;

/// Regenerates every figure on a pool of `threads` workers under a fresh
/// sim-clocked recording scoped to this thread, exactly as
/// `all_figures --obs <dir> --obs-clock sim --threads <n>` does.
fn instrumented_figures(obs: &Obs, threads: usize) {
    let pool = ParPool::new(threads);
    let tables =
        sustainai::obs::with_task_handle(obs, || sustain_bench::figs::all_with_pool(&pool));
    assert!(!tables.is_empty(), "figure catalogue must regenerate");
}

fn sim_profile(threads: usize) -> (String, String) {
    let obs = ObsConfig::enabled().build();
    instrumented_figures(&obs, threads);
    let tree = prof::SpanTree::from_records(&obs.events());
    let profile = prof::Profile::from_tree(&tree);
    (prof::report::render(&profile, 64), prof::to_folded(&tree))
}

#[test]
fn work_counter_profile_is_byte_identical_across_thread_counts() {
    let (report_one, folded_one) = sim_profile(1);
    let (report_four, folded_four) = sim_profile(4);
    assert!(
        report_one.contains("optim.cache.simulate"),
        "instrumented fig07 hot path must appear: {report_one}"
    );
    assert_eq!(
        report_one, report_four,
        "profile.txt must not depend on threads"
    );
    assert_eq!(
        folded_one, folded_four,
        "flame.folded must not depend on threads"
    );
    assert!(!folded_one.is_empty(), "work counters must produce stacks");
}

#[test]
fn wall_clock_profile_attributes_the_fig07_hot_path() {
    let obs = ObsConfig::enabled().with_wall_clock().build();
    instrumented_figures(&obs, 2);
    let profile = prof::profile_records(&obs.events());
    // The acceptance bar from the profiling work: at least 90% of the
    // fig07_waterfall figure's inclusive time must land in a *named* inner
    // span, so a hotspot report points at code, not at a figure label.
    let covered = profile.attribution("figure.fig07_waterfall", "optim.cache.simulate");
    assert!(
        covered >= 0.9,
        "optim.cache.simulate covers only {:.1}% of figure.fig07_waterfall",
        covered * 100.0
    );
    let fig = profile
        .stats("figure.fig07_waterfall")
        .expect("fig07 span recorded");
    assert!(
        fig.total.as_secs() > 0.0,
        "wall clock must measure real time"
    );
}
