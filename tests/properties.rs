//! Property-based tests (proptest) on the core data structures and
//! cross-crate invariants.

use proptest::prelude::*;

use sustainai::core::embodied::{AllocationPolicy, EmbodiedModel};
use sustainai::core::intensity::CarbonIntensity;
use sustainai::core::lifecycle::{Breakdown, MlPhase};
use sustainai::core::stats::{percentile, Histogram, LogNormal};
use sustainai::core::units::{Co2e, Energy, Fraction, Power, TimeSpan};
use sustainai::fleet::scheduler::{schedule, IntensitySeries, Policy, ScheduledJob};
use sustainai::fleet::storage::Battery;
use sustainai::optim::cache::{CachePolicy, KeyCache};
use sustainai::optim::pareto::{pareto_frontier, Candidate};

proptest! {
    #[test]
    fn energy_unit_conversions_round_trip(kwh in 0.0f64..1e9) {
        let e = Energy::from_kilowatt_hours(kwh);
        prop_assert!((e.as_joules() / 3.6e6 - kwh).abs() < kwh.abs() * 1e-12 + 1e-9);
        prop_assert!((Energy::from_joules(e.as_joules()).as_kilowatt_hours() - kwh).abs()
            < kwh.abs() * 1e-12 + 1e-9);
    }

    #[test]
    fn power_time_energy_triangle(watts in 0.0f64..1e7, hours in 0.0f64..1e5) {
        let p = Power::from_watts(watts);
        let t = TimeSpan::from_hours(hours);
        let e = p * t;
        prop_assert_eq!(e, t * p);
        if hours > 0.0 {
            let back = e / t;
            prop_assert!((back.as_watts() - watts).abs() < watts.abs() * 1e-9 + 1e-9);
        }
        if watts > 0.0 {
            let back = e / p;
            prop_assert!((back.as_hours() - hours).abs() < hours.abs() * 1e-9 + 1e-9);
        }
    }

    #[test]
    fn emissions_scale_linearly_with_energy_and_intensity(
        kwh in 0.0f64..1e6,
        g_per_kwh in 0.0f64..2000.0,
        k in 0.0f64..100.0,
    ) {
        let i = CarbonIntensity::from_grams_per_kwh(g_per_kwh);
        let e = Energy::from_kilowatt_hours(kwh);
        let base = i.emissions(e);
        let scaled = i.emissions(e * k);
        prop_assert!((scaled.as_grams() - base.as_grams() * k).abs()
            < base.as_grams().abs() * k * 1e-9 + 1e-6);
    }

    #[test]
    fn fraction_saturating_always_valid(x in -10.0f64..10.0) {
        let f = Fraction::saturating(x);
        prop_assert!((0.0..=1.0).contains(&f.value()));
        prop_assert!((f.value() + f.complement().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn embodied_amortization_is_linear_and_bounded(
        days in 0.0f64..1461.0,
        util in 0.05f64..1.0,
    ) {
        let m = EmbodiedModel::gpu_server()
            .unwrap()
            .with_expected_utilization(Fraction::saturating(util))
            .unwrap();
        let span = TimeSpan::from_days(days);
        let time_share = m.amortize(span, AllocationPolicy::TimeShare).unwrap();
        // Time-share never exceeds the total within the lifetime.
        prop_assert!(time_share <= m.total() * 1.0000001);
        // Usage-share is time-share inflated by 1/utilization.
        let usage = m.amortize(span, AllocationPolicy::UsageShare).unwrap();
        prop_assert!((usage.as_grams() - time_share.as_grams() / util).abs()
            < usage.as_grams().abs() * 1e-9 + 1e-6);
    }

    #[test]
    fn breakdown_shares_partition_unity(
        a in 0.0f64..1e6, b in 0.0f64..1e6, c in 0.0f64..1e6,
    ) {
        prop_assume!(a + b + c > 0.0);
        let mut ledger = Breakdown::<Energy>::zero();
        ledger[MlPhase::DataProcessing] = Energy::from_joules(a);
        ledger[MlPhase::OfflineTraining] = Energy::from_joules(b);
        ledger[MlPhase::Inference] = Energy::from_joules(c);
        let shares = ledger.shares();
        let sum: f64 = MlPhase::ALL.iter().map(|p| shares[*p].value()).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn battery_never_overflows_or_goes_negative(
        ops in prop::collection::vec((0.0f64..10.0, 0.0f64..5.0, any::<bool>()), 1..60),
    ) {
        let mut battery = Battery::new(
            Energy::from_megawatt_hours(5.0),
            Power::from_megawatts(3.0),
            Fraction::saturating(0.9),
        );
        let mut drawn = Energy::ZERO;
        let mut delivered = Energy::ZERO;
        for (mw, hours, charge) in ops {
            let p = Power::from_megawatts(mw);
            let t = TimeSpan::from_hours(hours);
            if charge {
                drawn += battery.charge(p, t);
            } else {
                delivered += battery.discharge(p, t);
            }
            prop_assert!(battery.stored() >= Energy::ZERO);
            prop_assert!(battery.stored() <= battery.capacity() * 1.0000001);
        }
        // Energy conservation: what came out never exceeds efficiency × input.
        prop_assert!(delivered.as_joules() <= drawn.as_joules() * 0.9 + 1.0);
    }

    #[test]
    fn cache_respects_capacity_and_hit_rate_bounds(
        capacity in 1usize..64,
        keys in prop::collection::vec(0u64..100, 1..500),
    ) {
        for policy in [CachePolicy::Lru, CachePolicy::Lfu] {
            let mut cache = KeyCache::new(policy, capacity);
            for &k in &keys {
                cache.access(k);
            }
            prop_assert!(cache.len() <= capacity);
            let rate = cache.hit_rate().value();
            prop_assert!((0.0..=1.0).contains(&rate));
            prop_assert_eq!(cache.hits() + cache.misses(), keys.len() as u64);
        }
    }

    #[test]
    fn pareto_frontier_points_are_non_dominated(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..1.0), 1..200),
    ) {
        let candidates: Vec<Candidate> = pts
            .iter()
            .enumerate()
            .map(|(i, (c, e))| Candidate::new(i as u64, *c, *e))
            .collect();
        let frontier = pareto_frontier(&candidates);
        prop_assert!(!frontier.is_empty());
        for f in &frontier {
            for c in &candidates {
                prop_assert!(!c.dominates(f), "frontier point {f:?} dominated by {c:?}");
            }
        }
        // Every candidate is covered: dominated by or equal to a frontier point.
        for c in &candidates {
            let covered = frontier
                .iter()
                .any(|f| f.dominates(c) || (f.cost == c.cost && f.error == c.error));
            prop_assert!(covered, "candidate {c:?} not covered");
        }
    }

    #[test]
    fn lognormal_calibration_round_trips(
        median in 0.01f64..100.0,
        p99_mult in 1.1f64..1000.0,
    ) {
        let p99 = median * p99_mult;
        let d = LogNormal::from_median_p99(median, p99).unwrap();
        prop_assert!((d.median() - median).abs() < median * 1e-9);
        prop_assert!((d.p99() - p99).abs() < p99 * 1e-9);
        prop_assert!((d.quantile(0.5) - median).abs() < median * 1e-6);
    }

    #[test]
    fn histogram_conserves_observations(
        values in prop::collection::vec(-2.0f64..3.0, 0..300),
    ) {
        let mut h = Histogram::new(0.0, 1.0, 7).unwrap();
        h.record_all(values.iter().copied());
        prop_assert_eq!(h.total(), values.len() as u64);
        let mass: u64 = h.counts().iter().sum();
        prop_assert_eq!(mass, values.len() as u64);
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        values in prop::collection::vec(-1e6f64..1e6, 2..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&values, lo);
        let b = percentile(&values, hi);
        prop_assert!(a <= b);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(a >= min && b <= max);
    }

    #[test]
    fn carbon_aware_never_beats_immediate_in_reverse(
        arrivals in prop::collection::vec(0usize..48, 1..20),
        slack in 1usize..24,
    ) {
        // With no concurrency cap, carbon-aware always does at least as well
        // as immediate: the arrival slot is always a candidate.
        let jobs: Vec<ScheduledJob> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| ScheduledJob::new(i as u64, a, 2, Energy::from_kilowatt_hours(10.0)))
            .collect();
        let series = IntensitySeries::solar_day(3);
        let immediate = schedule(&jobs, &series, Policy::Immediate, None);
        let aware = schedule(
            &jobs,
            &series,
            Policy::CarbonAware { max_delay_hours: slack },
            None,
        );
        prop_assert!(aware.total_co2() <= immediate.total_co2() + Co2e::from_grams(1e-6));
    }

    #[test]
    fn follow_the_sun_never_loses_to_home_region(
        arrivals in prop::collection::vec(0usize..48, 1..16),
    ) {
        use sustainai::fleet::geo::{follow_the_sun_fleet, place, GeoJob, GeoPolicy};
        let jobs: Vec<GeoJob> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| GeoJob {
                id: i as u64,
                arrival_hour: a,
                duration_hours: 2,
                energy: Energy::from_kilowatt_hours(10.0),
            })
            .collect();
        // Uncapped regions: the home region is always a candidate, so
        // follow-the-sun can never do worse.
        let regions = follow_the_sun_fleet(3, usize::MAX / 2);
        let home = place(&jobs, &regions, GeoPolicy::HomeRegion);
        let sun = place(&jobs, &regions, GeoPolicy::FollowTheSun);
        prop_assert!(sun.total_co2() <= home.total_co2() + Co2e::from_grams(1e-6));
    }

    #[test]
    fn packing_conserves_demand_and_respects_capacity(
        demands in prop::collection::vec(0.05f64..1.0, 1..40),
    ) {
        use sustainai::optim::multitenancy::{dedicated, pack, Tenant};
        let tenants: Vec<Tenant> = demands
            .iter()
            .map(|&d| Tenant::new(Fraction::saturating(d), 8.0))
            .collect();
        let packed = pack(&tenants);
        let alone = dedicated(&tenants);
        prop_assert!(packed.devices >= 1);
        prop_assert!(packed.devices <= alone.devices);
        // No device overfull; total occupancy equals total demand.
        let total_demand: f64 = demands.iter().sum();
        let total_occ: f64 = packed.occupancy.iter().map(|o| o.value()).sum();
        prop_assert!((total_occ - total_demand).abs() < 1e-6);
        for occ in &packed.occupancy {
            prop_assert!(occ.value() <= 1.0 + 1e-9);
        }
        // And at least the fractional lower bound of devices is used.
        prop_assert!(packed.devices as f64 >= total_demand - 1e-9);
    }

    #[test]
    fn embodied_per_year_is_decreasing_in_lifetime(
        years_a in 1.0f64..20.0,
        delta in 0.1f64..10.0,
    ) {
        use sustainai::fleet::lifetime::LifetimeTradeoff;
        let t = LifetimeTradeoff::gpu_server();
        let a = t.at(TimeSpan::from_years(years_a));
        let b = t.at(TimeSpan::from_years(years_a + delta));
        prop_assert!(b.embodied_per_year < a.embodied_per_year);
        prop_assert!(b.mitigation_per_year >= a.mitigation_per_year);
    }

    #[test]
    fn data_pipeline_power_is_monotone(
        pb in 1.0f64..1000.0,
        gbps in 1.0f64..5000.0,
        scale in 1.0f64..4.0,
    ) {
        use sustainai::core::units::{DataRate, DataVolume};
        use sustainai::workload::datapipeline::DataPipeline;
        let base = DataPipeline::new(
            DataVolume::from_petabytes(pb),
            Fraction::saturating(0.2),
            DataRate::from_gigabytes_per_sec(gbps),
            100e-9,
        );
        let grown = base.grown(scale, scale);
        prop_assert!(grown.total_power() >= base.total_power());
        prop_assert!(grown.storage_embodied() >= base.storage_embodied());
    }

    #[test]
    fn trace_tree_rollup_equals_sum_of_leaves(
        leaves in prop::collection::vec((0u8..4, 0u8..4, 10.0f64..500.0), 1..32),
    ) {
        use sustainai::telemetry::hierarchy::TraceTree;
        use sustainai::telemetry::trace::PowerTrace;
        let mut tree = TraceTree::new();
        let mut total = Energy::ZERO;
        for (i, (rack, host, watts)) in leaves.iter().enumerate() {
            let mut t = PowerTrace::new();
            t.push(TimeSpan::ZERO, Power::from_watts(*watts));
            t.push(TimeSpan::from_hours(1.0), Power::from_watts(*watts));
            total += t.energy();
            tree.insert(format!("r{rack}/h{host}/g{i}"), t);
        }
        let rollup = tree.subtree_energy("");
        prop_assert!((rollup.as_joules() - total.as_joules()).abs() < 1e-6);
        // Partition property: per-rack children sum to the root.
        let by_rack: f64 = tree
            .children_energy("")
            .values()
            .map(|e| e.as_joules())
            .sum();
        prop_assert!((by_rack - total.as_joules()).abs() < 1e-6);
    }

    #[test]
    fn campaign_early_stop_factor_bounds(
        checkpoint in 0.01f64..1.0,
        survivors in 0.01f64..1.0,
    ) {
        use sustainai::workload::experimentation::Campaign;
        let c = Campaign::new(4, 4).with_early_stopping(checkpoint, survivors);
        let factor = c.early_stop_cost_factor();
        prop_assert!(factor <= 1.0 + 1e-12);
        prop_assert!(factor >= checkpoint.min(survivors) - 1e-12);
    }

    #[test]
    fn footprint_shares_partition(op in 0.0f64..1e9, emb in 0.0f64..1e9) {
        prop_assume!(op + emb > 0.0);
        let fp = sustainai::core::footprint::CarbonFootprint::new(
            Co2e::from_grams(op),
            Co2e::from_grams(emb),
        );
        let sum = fp.embodied_share().value() + fp.operational_share().value();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }
}
