//! JSON round-trip tests for the public data structures — reports and traces
//! are meant to be persisted to model cards and dashboards (paper §V-A).

use serde_json as json;

use sustainai::core::footprint::{CarbonFootprint, FootprintReport};
use sustainai::core::intensity::{AccountingBasis, CarbonIntensity, EnergyMix, EnergySource};
use sustainai::core::lifecycle::MlPhase;
use sustainai::core::units::{Co2e, Energy, Power, TimeSpan};
use sustainai::edge::log::{ClientLog, ClientLogEntry};
use sustainai::telemetry::trace::PowerTrace;

fn round_trip<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let encoded = json::to_string(value).expect("serialize");
    let decoded: T = json::from_str(&encoded).expect("deserialize");
    assert_eq!(&decoded, value);
}

#[test]
fn footprint_report_round_trips() {
    let mut report = FootprintReport::new(
        "LM",
        AccountingBasis::LocationBased,
        Energy::from_megawatt_hours(3.0),
        CarbonFootprint::new(Co2e::from_tonnes(1.0), Co2e::from_tonnes(0.5)),
    );
    report.record_phase(MlPhase::Inference, Co2e::from_tonnes(0.65));
    report.record_phase(MlPhase::OfflineTraining, Co2e::from_tonnes(0.35));
    round_trip(&report);
}

#[test]
fn power_trace_round_trips() {
    let trace: PowerTrace = (0..100)
        .map(|i| (TimeSpan::from_secs(i as f64), Power::from_watts(i as f64)))
        .collect();
    round_trip(&trace);
}

#[test]
fn energy_mix_round_trips() {
    let mix = EnergyMix::new(vec![
        (EnergySource::Solar, 0.3),
        (EnergySource::Wind, 0.2),
        (EnergySource::Gas, 0.5),
    ])
    .unwrap();
    round_trip(&mix);
    // Intensity is preserved.
    let encoded = json::to_string(&mix).unwrap();
    let decoded: EnergyMix = json::from_str(&encoded).unwrap();
    assert_eq!(decoded.intensity(), mix.intensity());
}

#[test]
fn client_log_round_trips() {
    let mut log = ClientLog::ninety_day();
    for i in 0..20 {
        log.push(ClientLogEntry {
            compute: TimeSpan::from_minutes(i as f64),
            download: TimeSpan::from_secs(8.0),
            upload: TimeSpan::from_secs(32.0),
        });
    }
    round_trip(&log);
}

#[test]
fn model_registry_round_trips() {
    use sustainai::workload::models::{MlModel, OssModel, ProductionModel};
    round_trip(&OssModel::Gpt3.model());
    round_trip(&ProductionModel::Rm1);
    let m: MlModel = json::from_str(&json::to_string(&OssModel::Meena.model()).unwrap()).unwrap();
    assert_eq!(m.name(), "Meena");
}

#[test]
fn quantities_serialize_as_plain_numbers() {
    // Interop: other tools should read the JSON without wrapper objects.
    assert_eq!(json::to_string(&Energy::from_joules(5.5)).unwrap(), "5.5");
    assert_eq!(json::to_string(&Co2e::from_grams(2.0)).unwrap(), "2.0");
    assert_eq!(
        json::to_string(&CarbonIntensity::from_grams_per_kwh(429.0)).unwrap(),
        "429.0"
    );
}

#[test]
fn fleet_sim_report_round_trips() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sustainai::core::intensity::GridRegion;
    use sustainai::fleet::cluster::Cluster;
    use sustainai::fleet::datacenter::DataCenter;
    use sustainai::fleet::sim::FleetSim;
    use sustainai::fleet::utilization::UtilizationModel;
    use sustainai::workload::training::{JobClass, JobGenerator};

    let sim = FleetSim::new(
        Cluster::gpu_training(5),
        DataCenter::hyperscale("dc", GridRegion::UsAverage, Power::from_megawatts(1.0)),
        JobGenerator::calibrated(JobClass::Research).unwrap(),
        UtilizationModel::research_cluster(),
        5.0,
        TimeSpan::from_days(3.0),
    );
    let report = sim.run(&mut StdRng::seed_from_u64(5));
    round_trip(&report);
}
